//! Kill-and-resume determinism: a run interrupted at an arbitrary gradient
//! step and resumed from its rotating checkpoint pair must finish with
//! weights bit-identical to the uninterrupted run — for the serial trainer
//! and the data-parallel one — including when `latest` is corrupted and
//! recovery falls back to `prev`.

use tmn_core::{
    CheckpointStore, LoadedFrom, ModelConfig, ModelKind, TrainConfig, Trainer,
};
use tmn_data::RankSampler;
use tmn_traj::{DistanceMatrix, Point, Trajectory};
use tmn_traj::metrics::{Metric, MetricParams};

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir =
            std::env::temp_dir().join(format!("tmn_resume_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }

    fn path(&self) -> String {
        self.0.display().to_string()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn toy_set(n: usize) -> Vec<Trajectory> {
    (0..n)
        .map(|i| {
            let off = i as f64 / n as f64;
            (0..12).map(|t| Point::new(0.08 * t as f64, off)).collect()
        })
        .collect()
}

fn config(threads: usize) -> TrainConfig {
    TrainConfig {
        epochs: 2,
        lr: 5e-3,
        sampling_number: 6,
        batch_pairs: 12,
        sub_stride: 5,
        seed: 11,
        threads,
        ..Default::default()
    }
}

const MCFG: ModelConfig = ModelConfig { dim: 8, seed: 9 };

fn build_trainer<'a>(
    model: &'a dyn tmn_core::PairModel,
    train: &'a [Trajectory],
    dmat: &'a DistanceMatrix,
    cfg: TrainConfig,
) -> Trainer<'a> {
    let threads = cfg.threads;
    let trainer = Trainer::new(
        model,
        train,
        dmat,
        Metric::Dtw,
        MetricParams::default(),
        Box::new(RankSampler),
        cfg,
        None,
    );
    if threads > 1 {
        trainer.with_replicas(ModelKind::Tmn, MCFG)
    } else {
        trainer
    }
}

/// Uninterrupted run → (weight fingerprint, per-epoch loss bits).
fn run_full(threads: usize) -> (u64, Vec<u32>) {
    let train = toy_set(12);
    let dmat = DistanceMatrix::compute(&train, Metric::Dtw, &MetricParams::default(), 1);
    let model = ModelKind::Tmn.build(&MCFG);
    let mut trainer = build_trainer(model.as_ref(), &train, &dmat, config(threads));
    let stats = trainer.train();
    (model.params().fingerprint(), stats.epochs.iter().map(|e| e.loss.to_bits()).collect())
}

/// Kill at `kill_at` steps, then resume in a fresh trainer (fresh model,
/// fresh RNG — everything must come off disk). Optionally corrupt `latest`
/// first to force `prev` recovery.
fn run_interrupted(threads: usize, kill_at: u64, corrupt_latest: bool) -> (u64, Vec<u32>) {
    let tmp = TempDir::new(&format!("t{threads}_k{kill_at}_c{corrupt_latest}"));
    let train = toy_set(12);
    let dmat = DistanceMatrix::compute(&train, Metric::Dtw, &MetricParams::default(), 1);
    let cfg = TrainConfig {
        checkpoint_every: 2,
        checkpoint_dir: Some(tmp.path()),
        ..config(threads)
    };
    {
        let model = ModelKind::Tmn.build(&MCFG);
        let mut trainer =
            build_trainer(model.as_ref(), &train, &dmat, cfg.clone()).with_step_limit(kill_at);
        trainer.train();
        assert_eq!(trainer.steps(), kill_at, "step limit did not halt the run");
    }
    if corrupt_latest {
        let store = CheckpointStore::open(&tmp.0).unwrap();
        let mut bytes = std::fs::read(store.latest_path()).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(store.latest_path(), &bytes).unwrap();
    }
    // "New process": model seeded differently on purpose — resume must
    // overwrite every weight from the checkpoint.
    let model = ModelKind::Tmn.build(&ModelConfig { dim: 8, seed: 777 });
    let mut trainer = build_trainer(model.as_ref(), &train, &dmat, cfg);
    let from = trainer.resume_latest().expect("resume from checkpoint pair");
    if corrupt_latest {
        assert_eq!(from, LoadedFrom::Prev, "corrupt latest must fall back to prev");
    } else {
        assert_eq!(from, LoadedFrom::Latest);
    }
    let resumed_stats = trainer.train();
    let mut losses: Vec<u32> = Vec::new();
    // The resumed stats only cover epochs finished after the kill; the
    // final epoch's loss must still match the uninterrupted curve tail.
    for e in &resumed_stats.epochs {
        losses.push(e.loss.to_bits());
    }
    (model.params().fingerprint(), losses)
}

#[test]
fn serial_resume_is_bit_identical() {
    let (full_fp, full_losses) = run_full(1);
    // Kill mid-epoch, off the checkpoint cadence (step 5, checkpoints at 2/4).
    let (resumed_fp, resumed_losses) = run_interrupted(1, 5, false);
    assert_eq!(full_fp, resumed_fp, "threads=1 resumed weights diverged");
    // Epochs completed after the resume must replay the same losses.
    let tail = &full_losses[full_losses.len() - resumed_losses.len()..];
    assert_eq!(tail, &resumed_losses[..], "threads=1 resumed loss curve diverged");
}

#[test]
fn parallel_resume_is_bit_identical() {
    let (full_fp, full_losses) = run_full(4);
    let (resumed_fp, resumed_losses) = run_interrupted(4, 5, false);
    assert_eq!(full_fp, resumed_fp, "threads=4 resumed weights diverged");
    let tail = &full_losses[full_losses.len() - resumed_losses.len()..];
    assert_eq!(tail, &resumed_losses[..], "threads=4 resumed loss curve diverged");
}

#[test]
fn corrupted_latest_recovers_from_prev_and_stays_deterministic() {
    let (full_fp, _) = run_full(1);
    // Resuming from the older `prev` checkpoint replays more steps, but the
    // replay is deterministic, so the final weights still match exactly.
    let (resumed_fp, _) = run_interrupted(1, 5, true);
    assert_eq!(full_fp, resumed_fp, "prev-recovery resume diverged");
}

#[test]
fn resume_at_checkpoint_boundary_is_bit_identical() {
    let (full_fp, _) = run_full(1);
    // Kill exactly on the cadence: the checkpoint captures the kill point
    // itself and the resume replays nothing.
    let (resumed_fp, _) = run_interrupted(1, 4, false);
    assert_eq!(full_fp, resumed_fp, "boundary resume diverged");
}
