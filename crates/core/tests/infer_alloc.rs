//! Tape-free inference gates: bitwise parity with the graphed forward and
//! the allocation regression budget.
//!
//! `PairModel::embed_nograd` promises two things:
//!
//! 1. **Numerics** — the returned `[B·d]` embeddings equal the graphed
//!    `encode_pairs` last-valid-step rows *bitwise*: the fast path reuses
//!    the same kernels, the same elementwise step functions and the same
//!    operation order, so there is no tolerance to tune.
//! 2. **Allocations** — after the thread-local buffer pool is warm, one
//!    call creates **zero** graph nodes (observed via `nodes_created`) and
//!    at most two large heap buffers (observed via the counting global
//!    allocator from `tmn_obs::memory`): the returned embedding vector plus
//!    at most one pool growth.
//!
//! The budget is deliberately measured with a `#[global_allocator]` rather
//! than a hand-maintained counter: any `vec![...]` sneaking back into the
//! hot path is caught no matter which layer allocates it.

use tmn_core::batch::PairBatch;
use tmn_core::config::ModelConfig;
use tmn_core::models::ModelKind;
use tmn_obs::memory;
use tmn_traj::{Point, Trajectory};

/// Allocations of at least this many bytes are counted while armed. The
/// batch below makes every pooled intermediate (`B·m·d̂` and up) larger than
/// this, while graph bookkeeping and the returned `[B·d]` vector stay below.
const LARGE: usize = 4096;

/// The armed counter is process-global; serialize measuring tests.
fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn traj(seed: u64, len: usize) -> Trajectory {
    (0..len)
        .map(|i| {
            let x = ((seed * 31 + i as u64 * 17) % 97) as f64 / 97.0;
            let y = ((seed * 13 + i as u64 * 7) % 89) as f64 / 89.0;
            Point::new(x, y)
        })
        .collect()
}

/// A ragged 8-pair batch (lengths 3..=17) so masking and last-step gather
/// are actually exercised.
fn ragged_batch() -> PairBatch {
    let a: Vec<Trajectory> = (0..8).map(|i| traj(i + 1, 3 + 2 * i as usize)).collect();
    let b: Vec<Trajectory> = (0..8).map(|i| traj(i + 11, 4 + (i as usize * 3) % 13)).collect();
    let ar: Vec<&Trajectory> = a.iter().collect();
    let br: Vec<&Trajectory> = b.iter().collect();
    PairBatch::build(&ar, &br)
}

/// Last-valid-step rows of a graphed `[B, m, d]` encoding, flattened.
fn gather_graphed(out: &tmn_autograd::Tensor, last_idx: &[usize], d: usize) -> Vec<f32> {
    let (m, data) = (out.shape()[1], out.to_vec());
    let mut flat = Vec::with_capacity(last_idx.len() * d);
    for (row, &last) in last_idx.iter().enumerate() {
        flat.extend_from_slice(&data[(row * m + last) * d..(row * m + last + 1) * d]);
    }
    flat
}

#[test]
fn counting_allocator_is_compiled_in() {
    // The allocation gate rests on the alloc-count feature being active for
    // this crate's test builds; fail loudly if it ever drops.
    assert!(memory::is_active(), "tmn-obs alloc-count feature must be enabled for tests");
    assert!(memory::alloc_count() > 0, "allocator must have observed this binary's allocations");
}

#[test]
fn nograd_embeddings_match_graphed_forward_bitwise() {
    let batch = ragged_batch();
    for kind in ModelKind::ALL {
        let model = kind.build(&ModelConfig { dim: 16, seed: 7 });
        let enc = model.encode_pairs(&batch);
        let d = model.dim();
        let fast_a = model
            .embed_nograd(&batch.a, &batch.b)
            .unwrap_or_else(|| panic!("{kind}: no fast path"));
        let fast_b = model.embed_nograd(&batch.b, &batch.a).unwrap();
        assert_eq!(fast_a, gather_graphed(&enc.out_a, &batch.a.last_idx, d), "{kind} side A");
        assert_eq!(fast_b, gather_graphed(&enc.out_b, &batch.b.last_idx, d), "{kind} side B");
    }
}

#[test]
fn neutraj_fast_path_sees_the_warm_memory() {
    // NeuTraj's embeddings depend on its spatial attention memory; the fast
    // path must read the same (written) state as the graphed forward.
    let batch = ragged_batch();
    let model = ModelKind::NeuTraj.build(&ModelConfig { dim: 16, seed: 9 });
    let enc = model.encode_pairs(&batch);
    model.post_step(&batch, &enc); // fill the memory
    let warm = model.encode_pairs(&batch);
    let fast = model.embed_nograd(&batch.a, &batch.b).unwrap();
    let graphed = gather_graphed(&warm.out_a, &batch.a.last_idx, model.dim());
    assert_eq!(fast, graphed, "fast path diverged after memory writes");
    // And the memory genuinely changed the output, so this test has teeth.
    assert_ne!(fast, gather_graphed(&enc.out_a, &batch.a.last_idx, model.dim()));
}

#[test]
fn embed_nograd_allocates_no_graph_nodes_and_stays_in_the_pool() {
    let _l = test_lock();
    // dim 32 ⇒ the smallest pooled intermediate is B·m·d̂·4 = 8·17·16·4
    // ≈ 8.7 KiB, above LARGE; the returned [B·d] vector is 1 KiB, below.
    let batch = ragged_batch();
    for kind in [ModelKind::Tmn, ModelKind::TmnNm, ModelKind::Srn, ModelKind::NeuTraj] {
        let model = kind.build(&ModelConfig { dim: 32, seed: 3 });
        // Warm the thread-local buffer pool.
        for _ in 0..10 {
            model.embed_nograd(&batch.a, &batch.b).unwrap();
        }
        let nodes_before = tmn_autograd::nodes_created();
        let (out, large) =
            memory::count_large_during(LARGE, || model.embed_nograd(&batch.a, &batch.b).unwrap());
        let node_delta = tmn_autograd::nodes_created() - nodes_before;
        assert_eq!(node_delta, 0, "{kind}: embed_nograd created {node_delta} graph nodes");
        assert!(large <= 2, "{kind}: {large} large allocations in a warm embed_nograd call");
        assert_eq!(out.len(), 8 * 32, "{kind}: wrong embedding count");
    }
}
