//! Golden-file determinism: a fixed-seed training run must reproduce the
//! committed loss curve and final-weight fingerprint *bit for bit*, both
//! serially (threads=1) and data-parallel (threads=4, which has its own
//! snapshot because f32 reduction order differs).
//!
//! Regenerate the snapshots after an intentional numerics change with:
//!
//! ```text
//! TMN_UPDATE_GOLDEN=1 cargo test -p tmn-core --test golden_determinism
//! ```

use tmn_core::{LossKind, ModelConfig, ModelKind, TrainConfig, Trainer};
use tmn_data::RankSampler;
use tmn_traj::metrics::{Metric, MetricParams};
use tmn_traj::{DistanceMatrix, Point, Trajectory};

fn toy_set(n: usize) -> Vec<Trajectory> {
    (0..n)
        .map(|i| {
            let off = i as f64 / n as f64;
            (0..12).map(|t| Point::new(0.08 * t as f64, off)).collect()
        })
        .collect()
}

/// The fixed-seed run under test: 2 epochs of TMN on 12 toy trajectories.
/// Returns per-epoch loss bits and a 64-bit FNV-1a fingerprint of every
/// trained weight's bit pattern (name order is ParamSet registration order,
/// which is deterministic).
fn golden_run(threads: usize) -> (Vec<u32>, u64) {
    let train = toy_set(12);
    let dmat = DistanceMatrix::compute(&train, Metric::Dtw, &MetricParams::default(), 1);
    let mcfg = ModelConfig { dim: 8, seed: 9 };
    let model = ModelKind::Tmn.build(&mcfg);
    let cfg = TrainConfig {
        epochs: 2,
        lr: 5e-3,
        sampling_number: 6,
        batch_pairs: 12,
        loss: LossKind::Mse,
        use_sub_loss: true,
        sub_stride: 5,
        clip: 5.0,
        seed: 11,
        threads,
        checkpoint_every: 0,
        checkpoint_dir: None,
    };
    let mut trainer = Trainer::new(
        model.as_ref(),
        &train,
        &dmat,
        Metric::Dtw,
        MetricParams::default(),
        Box::new(RankSampler),
        cfg,
        None,
    );
    if threads > 1 {
        trainer = trainer.with_replicas(ModelKind::Tmn, mcfg);
    }
    let stats = trainer.train();
    let losses = stats.epochs.iter().map(|e| e.loss.to_bits()).collect();

    let mut hash = 0xcbf29ce484222325u64; // FNV-1a offset basis
    for (name, _, data) in model.params().snapshot() {
        for b in name.bytes() {
            hash = (hash ^ b as u64).wrapping_mul(0x100000001b3);
        }
        for v in data {
            for b in v.to_bits().to_le_bytes() {
                hash = (hash ^ b as u64).wrapping_mul(0x100000001b3);
            }
        }
    }
    (losses, hash)
}

fn render(losses: &[u32], weight_hash: u64) -> String {
    let mut out = String::new();
    for l in losses {
        out.push_str(&format!("loss {l:08x} # {}\n", f32::from_bits(*l)));
    }
    out.push_str(&format!("weights {weight_hash:016x}\n"));
    out
}

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name)
}

fn check_against_golden(name: &str, threads: usize) {
    let (losses, weight_hash) = golden_run(threads);
    let rendered = render(&losses, weight_hash);
    let path = golden_path(name);
    if std::env::var("TMN_UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        eprintln!("updated {}", path.display());
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with TMN_UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        committed, rendered,
        "fixed-seed run (threads={threads}) diverged from {}; if the numerics \
         change was intentional, regenerate with TMN_UPDATE_GOLDEN=1",
        path.display()
    );
}

#[test]
fn serial_run_matches_committed_snapshot() {
    check_against_golden("loss_curve_threads1.txt", 1);
}

#[test]
fn parallel_run_matches_committed_snapshot() {
    check_against_golden("loss_curve_threads4.txt", 4);
}

#[test]
fn golden_run_is_reproducible_within_process() {
    // The snapshot premise: two identical in-process runs agree bit for bit.
    let (l1, h1) = golden_run(1);
    let (l2, h2) = golden_run(1);
    assert_eq!(l1, l2);
    assert_eq!(h1, h2);
}
