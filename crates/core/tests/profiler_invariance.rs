//! The profiler must be a pure observer: training with the op-level
//! profiler enabled has to produce bitwise-identical loss curves and model
//! parameters to training with it disabled.
//!
//! Kept as a single test function: the profiler enable flag is
//! process-global, and this integration-test binary owns its process.

use tmn_core::{LossKind, ModelConfig, ModelKind, TrainConfig, Trainer};
use tmn_data::RankSampler;
use tmn_obs::profiler;
use tmn_traj::metrics::{Metric, MetricParams};
use tmn_traj::{DistanceMatrix, Point, Trajectory};

fn toy_set(n: usize) -> Vec<Trajectory> {
    (0..n)
        .map(|i| {
            let off = i as f64 / n as f64;
            (0..12).map(|t| Point::new(0.08 * t as f64, off)).collect()
        })
        .collect()
}

fn train_run(threads: usize) -> (Vec<u32>, Vec<Vec<u32>>) {
    let train = toy_set(12);
    let dmat = DistanceMatrix::compute(&train, Metric::Dtw, &MetricParams::default(), 1);
    let mcfg = ModelConfig { dim: 8, seed: 9 };
    let model = ModelKind::Tmn.build(&mcfg);
    let cfg = TrainConfig {
        epochs: 2,
        lr: 5e-3,
        sampling_number: 6,
        batch_pairs: 12,
        loss: LossKind::Mse,
        use_sub_loss: true,
        sub_stride: 5,
        clip: 5.0,
        seed: 11,
        threads,
        checkpoint_every: 0,
        checkpoint_dir: None,
    };
    let mut trainer = Trainer::new(
        model.as_ref(),
        &train,
        &dmat,
        Metric::Dtw,
        MetricParams::default(),
        Box::new(RankSampler),
        cfg,
        None,
    );
    if threads > 1 {
        trainer = trainer.with_replicas(ModelKind::Tmn, mcfg);
    }
    let stats = trainer.train();
    let losses = stats.epochs.iter().map(|e| e.loss.to_bits()).collect();
    let weights = model
        .params()
        .snapshot()
        .into_iter()
        .map(|(_, _, d)| d.into_iter().map(f32::to_bits).collect())
        .collect();
    (losses, weights)
}

#[test]
fn profiler_on_and_off_train_identically() {
    profiler::set_enabled(false);
    profiler::reset();
    let (off_losses, off_weights) = train_run(1);

    profiler::set_enabled(true);
    profiler::reset();
    let (on_losses, on_weights) = train_run(1);
    let records = profiler::snapshot();
    profiler::set_enabled(false);

    assert!(!records.is_empty(), "enabled profiler recorded nothing");
    assert!(
        records.iter().any(|r| r.kind == "forward") && records.iter().any(|r| r.kind == "backward"),
        "expected both forward and backward records"
    );
    assert_eq!(off_losses, on_losses, "profiler changed the loss curve");
    assert_eq!(off_weights, on_weights, "profiler changed the trained weights");

    // Same invariance on the data-parallel path (worker threads have the
    // profiler's thread-local op tags of their own).
    profiler::set_enabled(false);
    profiler::reset();
    let (off_losses, off_weights) = train_run(4);
    profiler::set_enabled(true);
    profiler::reset();
    let (on_losses, on_weights) = train_run(4);
    profiler::set_enabled(false);
    assert_eq!(off_losses, on_losses, "profiler changed the parallel loss curve");
    assert_eq!(off_weights, on_weights, "profiler changed the parallel trained weights");
}
