//! Training-throughput benchmark: serial vs data-parallel gradient steps,
//! naive-vs-blocked GEMM kernel microbenchmarks, and the tape-free
//! inference fast path (embed qps, per-call latency percentiles, and the
//! int8-quantized index footprint).
//!
//! Trains TMN under the paper's default recipe (batch of 64 pairs) at
//! several worker counts and reports steps/second; then times the scalar
//! reference kernels against the cache-blocked ones at a few GEMM shapes;
//! then benches `embed_nograd` against the graphed forward.
//!
//! Usage: `cargo run -p tmn-bench --release --bin throughput [--quick|--full]`
//!
//! Results land in `results/BENCH_throughput.json`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use tmn::prelude::*;
use tmn_autograd::kernels;
use tmn_bench::{write_json, Scale, Table};
use tmn_eval::time_inference_split;
use tmn_obs::metrics;

#[derive(serde::Serialize)]
struct TrainRow {
    threads: usize,
    steps_per_sec: f64,
    pairs_per_sec: f64,
    speedup_vs_serial: f64,
}

#[derive(serde::Serialize)]
struct KernelRow {
    kernel: String,
    m: usize,
    k: usize,
    n: usize,
    naive_gflops: f64,
    /// Cache-blocked kernel with SIMD dispatch forced to the scalar tile.
    scalar_gflops: f64,
    /// Cache-blocked kernel under the host's best dispatch (AVX2+FMA here).
    blocked_gflops: f64,
    speedup: f64,
    /// blocked (dispatched) over blocked (forced scalar): the SIMD win alone.
    simd_speedup: f64,
}

#[derive(serde::Serialize)]
struct InferRow {
    /// Active SIMD path ("avx2" / "scalar"). A string, so `bench_diff`
    /// reports it as informational rather than gating it — two captures on
    /// different hosts should not fail the gate over hardware.
    simd_dispatch: String,
    trajectories: usize,
    /// Tape-free trajectories embedded per second (batched encode, batch 16).
    infer_qps: f64,
    /// Graphed wall / tape-free wall over the same encode workload — the
    /// autograd overhead the serving path skips.
    nograd_speedup: f64,
    /// Single-pair `embed_nograd` latency percentiles in nanoseconds.
    embed_ns_p50: f64,
    embed_ns_p99: f64,
    /// Vector bytes held by the int8-quantized HNSW index vs the f32 one.
    index_bytes: usize,
    index_f32_bytes: usize,
}

#[derive(serde::Serialize)]
struct ServeRow {
    shards: usize,
    corpus: usize,
    /// Vector-level inserts/second into the sharded incremental index
    /// (single writer; includes graph linking and any triggered compaction).
    insert_qps: f64,
    /// End-to-end engine queries/second through admission batching —
    /// includes the amortized `embed_nograd` forward, the scatter-gather
    /// shortlist and the exact rerank.
    batch_qps: f64,
    /// Data-plane query latency percentiles measured *under concurrent
    /// writer churn* (a writer thread inserts/deletes throughout).
    query_p50_ns: f64,
    query_p99_ns: f64,
    /// max/mean live shard occupancy after the run (1.0 = balanced).
    shard_imbalance: f64,
}

#[derive(serde::Serialize)]
struct StreamRow {
    /// Live streams driven concurrently through one engine.
    streams: usize,
    /// Points appended across all streams.
    appends: usize,
    /// End-to-end `append_point` calls/second through the engine thread
    /// (incremental stream step + conditional re-index + reply).
    appends_per_sec: f64,
    /// Per-append wall latency percentiles in nanoseconds, measured at the
    /// handle (includes the channel round-trip the serving path pays).
    append_ns_p50: f64,
    append_ns_p99: f64,
    /// Fraction of appends whose moved embedding was re-inserted into the
    /// index; the rest fell under `reembed_min_delta` and skipped the
    /// churn. Workload-dependent, so informational rather than gated.
    reindex_ratio: f64,
}

#[derive(serde::Serialize)]
struct TraceRow {
    /// Queries driven through the engine in each timed pass.
    traced_queries: usize,
    /// End-to-end batched queries/second with tracing disabled (the
    /// default): the near-zero-cost baseline.
    trace_off_qps: f64,
    /// Same workload with the flight recorder in capture-all mode
    /// (slow_threshold 0, sample_every 1) — the worst-case tracing cost;
    /// production configs sample and pay less.
    trace_on_qps: f64,
    /// (off - on) / off, in percent. Gated LowerBetter by `bench_diff`.
    overhead_pct: f64,
    /// Mean spans per captured query trace — how much detail the overhead
    /// above buys.
    spans_per_query: f64,
    /// Traces held by the flight recorder after the traced pass.
    flight_captured: usize,
}

#[derive(serde::Serialize)]
struct StoreRow {
    /// Trajectories in the on-disk corpus (10x the table-experiment corpus
    /// at every scale — the point of the data plane is headroom).
    corpus_n: usize,
    /// Ground-truth tile edge used for the blocked build.
    tile: usize,
    /// Corpus file size on disk (header + points + index).
    file_bytes: usize,
    /// Streaming corpus write throughput, file bytes / wall.
    build_mb_s: f64,
    /// Latency of `CorpusFile::open` (mmap + header/index validation),
    /// best of several opens.
    mmap_open_ns: f64,
    /// Wall seconds for the blocked, spill-to-disk ground-truth build.
    gt_blocked_wall_s: f64,
    /// Wall seconds for the dense in-RAM build of the same matrix.
    gt_inram_wall_s: f64,
    /// Heap high-water growth during the blocked build (0 when the bench
    /// was compiled without `--features mem`).
    gt_blocked_peak_bytes: usize,
    /// What a fully materialized n x n f64 matrix would take — the
    /// footprint the blocked path must stay under.
    gt_full_matrix_bytes: usize,
    /// Shard-per-core evaluation throughput over the mmap-backed
    /// embedding store (queries/second).
    eval_qps: f64,
    eval_queries: usize,
    eval_shards: usize,
    /// HR-10 of the synthetic endpoint embeddings against the stored
    /// ground truth — deterministic, so any drift is a real change.
    hr10: f64,
}

#[derive(serde::Serialize)]
struct Report {
    host_cores: usize,
    batch_pairs: usize,
    dim: usize,
    train_trajectories: usize,
    training: Vec<TrainRow>,
    kernels: Vec<KernelRow>,
    infer: InferRow,
    serve: ServeRow,
    stream: StreamRow,
    trace: TraceRow,
    store: StoreRow,
    /// Training-side metrics registry at end of run (`train_batch_ns`
    /// histogram, batch counter, wall/memory gauges) — the payload
    /// `bench_diff` gates across two captures.
    metrics: tmn_obs::MetricsSnapshot,
    note: String,
}

/// Steps/second for one worker count: one warm-up epoch (fills the
/// sub-trajectory prefix cache), then a timed epoch.
fn bench_training(ds: &Dataset, dmat: &DistanceMatrix, dim: usize, threads: usize) -> (f64, f64) {
    let mcfg = ModelConfig { dim, seed: 42 };
    let model = ModelKind::Tmn.build(&mcfg);
    let cfg = TrainConfig { epochs: 2, batch_pairs: 64, threads, ..Default::default() };
    let mut trainer = Trainer::new(
        model.as_ref(),
        &ds.train,
        dmat,
        Metric::Dtw,
        MetricParams::default(),
        Box::new(RankSampler),
        cfg.clone(),
        None,
    )
    .with_replicas(ModelKind::Tmn, mcfg);
    trainer.train_epoch(0); // warm-up: prefix cache + allocator
    let timed = trainer.train_epoch(1);
    let steps = (timed.pairs as f64 / cfg.batch_pairs as f64).max(1.0);
    (steps / timed.seconds, timed.pairs as f64 / timed.seconds)
}

/// GFLOP/s of one kernel over `reps` runs on freshly filled buffers.
fn bench_kernel(f: impl Fn(&[f32], &[f32], &mut [f32]), a: &[f32], b: &[f32], out_len: usize, flops: usize) -> f64 {
    let mut out = vec![0.0f32; out_len];
    f(a, b, &mut out); // warm-up
    let reps = (2_000_000_000 / flops).clamp(3, 200);
    let t0 = Instant::now();
    for _ in 0..reps {
        out.iter_mut().for_each(|v| *v = 0.0);
        f(a, b, &mut out);
    }
    let secs = t0.elapsed().as_secs_f64();
    std::hint::black_box(&out);
    (reps * flops) as f64 / secs / 1e9
}

/// Benchmark the tape-free serving path: batched encode throughput and
/// speedup over the graphed forward, single-pair latency percentiles, and
/// the quantized-index footprint over the encoded set.
fn bench_inference(ds: &Dataset, dim: usize) -> InferRow {
    let model = ModelKind::Tmn.build(&ModelConfig { dim, seed: 42 });
    let n = ds.test.len().min(64);
    let trajs = &ds.test[..n];

    let split = time_inference_split(model.as_ref(), trajs, 16);
    let infer_qps = split.trajectories as f64 / split.nograd_s.max(1e-12);

    // Single-pair latency: batch construction stays outside the clock so
    // the percentiles cover the model forward only.
    for t in trajs.iter().take(8) {
        let batch = PairBatch::build(&[t], &[t]);
        std::hint::black_box(model.embed_nograd(&batch.a, &batch.b));
    }
    let mut samples: Vec<f64> = Vec::new();
    let reps = 200usize.div_ceil(n.max(1));
    for _ in 0..reps {
        for t in trajs {
            let batch = PairBatch::build(&[t], &[t]);
            let t0 = Instant::now();
            let out = model.embed_nograd(&batch.a, &batch.b).expect("TMN has a tape-free path");
            let ns = t0.elapsed().as_nanos() as f64;
            std::hint::black_box(&out);
            samples.push(ns);
        }
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: usize| samples[(samples.len() * p / 100).min(samples.len() - 1)];

    let emb = encode_all(model.as_ref(), trajs, 16);
    let store = EmbeddingStore::from_vectors(&emb);
    let mut rng = StdRng::seed_from_u64(7);
    let index_bytes = store.build_hnsw_quantized(HnswConfig::default(), &mut rng).memory_bytes();
    let mut rng = StdRng::seed_from_u64(7);
    let index_f32_bytes = store.build_hnsw(HnswConfig::default(), &mut rng).memory_bytes();

    InferRow {
        simd_dispatch: tmn_autograd::simd::dispatch_name().to_string(),
        trajectories: n,
        infer_qps,
        nograd_speedup: split.speedup(),
        embed_ns_p50: pct(50),
        embed_ns_p99: pct(99),
        index_bytes,
        index_f32_bytes,
    }
}

/// Benchmark the serving engine: single-writer insert throughput, query
/// latency percentiles while a churn writer races the reader, and
/// end-to-end admission-batched queries through a live `ServeEngine`.
fn bench_serve(ds: &Dataset, dim: usize) -> ServeRow {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use tmn_serve::{ServeConfig, ServeEngine, ShardSet, ShardSetConfig};

    let shards = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).clamp(2, 4);
    let corpus = 1500u64;
    let vec_for = move |id: u64, ver: u64| -> Vec<f32> {
        (0..dim)
            .map(|d| (tmn_index::splitmix64(id * 31 + ver * 977 + d as u64) % 1000) as f32 / 1000.0)
            .collect()
    };

    // Phase 1: single-writer insert throughput into the sharded index.
    let set = Arc::new(ShardSet::new(
        dim,
        ShardSetConfig { shards, shortlist: 64, ..Default::default() },
    ));
    let t0 = Instant::now();
    for id in 0..corpus {
        set.insert(id, &vec_for(id, 0)).expect("serve bench insert");
    }
    let insert_qps = corpus as f64 / t0.elapsed().as_secs_f64();

    // Phase 2: query percentiles under concurrent writer churn.
    let done = Arc::new(AtomicBool::new(false));
    let churn = {
        let set = Arc::clone(&set);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut ver = 1u64;
            while !done.load(Ordering::Relaxed) {
                for id in corpus..corpus + 64 {
                    let _ = set.insert(id, &vec_for(id, ver));
                }
                for id in (corpus..corpus + 64).step_by(2) {
                    let _ = set.delete(id);
                }
                ver += 1;
            }
        })
    };
    let mut samples: Vec<f64> = Vec::with_capacity(400);
    for qi in 0..400u64 {
        let q = vec_for(1_000_000 + qi, 0);
        let t0 = Instant::now();
        let hits = set.query(&q, 10).expect("serve bench query");
        samples.push(t0.elapsed().as_nanos() as f64);
        std::hint::black_box(&hits);
    }
    done.store(true, Ordering::Relaxed);
    churn.join().expect("churn writer panicked");
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: usize| samples[(samples.len() * p / 100).min(samples.len() - 1)];
    let (query_p50_ns, query_p99_ns) = (pct(50), pct(99));
    let shard_imbalance = set.status().shard_imbalance;

    // Phase 3: end-to-end admission-batched queries through the engine
    // (TMN-NM: the full model is pair-dependent and cannot sit behind a
    // vector index; the ablation keeps its independent-embedding RNN).
    let engine = ServeEngine::start(
        ModelKind::TmnNm,
        &ModelConfig { dim, seed: 42 },
        ServeConfig {
            shard: ShardSetConfig { shards, shortlist: 64, ..Default::default() },
            max_batch: 16,
            ..Default::default()
        },
    )
    .expect("serve engine start");
    let handle = engine.handle();
    let n_corpus = ds.test.len().min(128);
    for (i, t) in ds.test.iter().take(n_corpus).enumerate() {
        handle.insert(i as u64, t.clone()).expect("engine insert");
    }
    let total_queries = 256usize;
    let batch: Vec<_> = ds.test.iter().take(16).cloned().collect();
    let t0 = Instant::now();
    for _ in 0..total_queries / batch.len() {
        let res = handle.query_batch(batch.clone(), 10).expect("engine batch query");
        std::hint::black_box(&res);
    }
    let batch_qps = total_queries as f64 / t0.elapsed().as_secs_f64();
    engine.shutdown();

    ServeRow {
        shards,
        corpus: corpus as usize,
        insert_qps,
        batch_qps,
        query_p50_ns,
        query_p99_ns,
        shard_imbalance,
    }
}

/// Measure what request tracing costs on the serve path: the same
/// admission-batched query workload as `bench_serve` phase 3, once with
/// tracing disabled (the default) and once with the flight recorder in
/// capture-all mode — the worst case, since every span is recorded and
/// every trace retained. Production configs sample and pay less.
fn bench_trace(ds: &Dataset, dim: usize) -> TraceRow {
    use tmn_obs::{trace, TraceConfig};
    use tmn_serve::{ServeConfig, ServeEngine, ShardSetConfig};

    let shards = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).clamp(2, 4);
    let engine = ServeEngine::start(
        ModelKind::TmnNm,
        &ModelConfig { dim, seed: 42 },
        ServeConfig {
            shard: ShardSetConfig { shards, shortlist: 64, ..Default::default() },
            max_batch: 16,
            ..Default::default()
        },
    )
    .expect("trace bench engine start");
    let handle = engine.handle();
    let n_corpus = ds.test.len().min(128);
    for (i, t) in ds.test.iter().take(n_corpus).enumerate() {
        handle.insert(i as u64, t.clone()).expect("trace bench insert");
    }

    let total_queries = 256usize;
    let batch: Vec<_> = ds.test.iter().take(16).cloned().collect();
    let run_pass = || {
        let t0 = Instant::now();
        for _ in 0..total_queries / batch.len() {
            let res = handle.query_batch(batch.clone(), 10).expect("trace bench query");
            std::hint::black_box(&res);
        }
        total_queries as f64 / t0.elapsed().as_secs_f64()
    };

    trace::set_enabled(false);
    let _warmup = run_pass();
    let trace_off_qps = run_pass();

    trace::configure(TraceConfig {
        span_ring: 8192,
        flight: 64,
        slow_threshold_ns: 0,
        sample_every: 1,
    });
    trace::reset();
    trace::set_enabled(true);
    let trace_on_qps = run_pass();
    let stats = trace::stats();
    let query_traces: Vec<_> =
        trace::recent().into_iter().filter(|t| t.name == "serve.query_batch").collect();
    let spans_per_query = if query_traces.is_empty() {
        0.0
    } else {
        query_traces.iter().map(|t| t.spans.len()).sum::<usize>() as f64
            / query_traces.len() as f64
    };
    trace::set_enabled(false);
    trace::configure(TraceConfig::default());
    trace::reset();
    engine.shutdown();

    TraceRow {
        traced_queries: total_queries,
        trace_off_qps,
        trace_on_qps,
        overhead_pct: (trace_off_qps - trace_on_qps) / trace_off_qps * 100.0,
        spans_per_query,
        flight_captured: stats.flight_len,
    }
}

/// Benchmark the streaming path: replay test trajectories point-by-point
/// through `append_point` and measure per-append latency, throughput, and
/// how often the moved embedding actually re-entered the index under a
/// small `reembed_min_delta`.
fn bench_stream(ds: &Dataset, dim: usize) -> StreamRow {
    use tmn_serve::{ServeConfig, ServeEngine, ShardSetConfig};

    let shards = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).clamp(2, 4);
    let engine = ServeEngine::start(
        ModelKind::TmnNm,
        &ModelConfig { dim, seed: 42 },
        ServeConfig {
            shard: ShardSetConfig { shards, shortlist: 64, ..Default::default() },
            max_batch: 16,
            // Small but nonzero: late appends to a long trajectory barely
            // move the embedding, so the skip path gets real coverage.
            reembed_min_delta: 1e-3,
        },
    )
    .expect("stream bench engine start");
    let handle = engine.handle();

    let n_streams = ds.test.len().min(24);
    // Warm-up stream: fills the engine thread's buffer pool and the HNSW
    // entry layers so the timed appends measure the steady state.
    for p in ds.test[0].points() {
        handle.append_point(1_000_000, *p).expect("warm-up append");
    }

    let mut samples: Vec<f64> = Vec::new();
    let mut reindexed = 0usize;
    let t0 = Instant::now();
    for (i, t) in ds.test.iter().take(n_streams).enumerate() {
        let id = 2_000_000 + i as u64;
        for p in t.points() {
            let ta = Instant::now();
            let out = handle.append_point(id, *p).expect("stream append");
            samples.push(ta.elapsed().as_nanos() as f64);
            reindexed += out.reindexed as usize;
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    engine.shutdown();

    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: usize| samples[(samples.len() * p / 100).min(samples.len() - 1)];
    let appends = samples.len();
    StreamRow {
        streams: n_streams,
        appends,
        appends_per_sec: appends as f64 / wall.max(1e-12),
        append_ns_p50: pct(50),
        append_ns_p99: pct(99),
        reindex_ratio: reindexed as f64 / appends.max(1) as f64,
    }
}

/// Benchmark the scale-out data plane: stream a 10x-scale corpus to disk,
/// reopen it as an mmap view, build the ground truth out-of-core (tiled,
/// CRC-framed, spilled) vs fully in RAM, then run the shard-per-core
/// Table II evaluation off the mmap-backed embedding store.
fn bench_store(scale: Scale) -> StoreRow {
    use tmn_obs::memory;
    use tmn_store::{BlockedDistanceMatrix, CorpusFile, CorpusWriter};
    use tmn_traj::GroundTruth;

    // 10x the largest table-experiment corpus (300 at default scale): the
    // data plane exists for sizes the in-RAM path was never meant to hold.
    let corpus_n = (scale.dataset_size() * 10).max(3000);
    let tile = 256usize;
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let dir = std::env::temp_dir().join(format!("tmn-bench-store-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create store bench dir");

    // Deterministic 16-point trajectories (short on purpose: the bench
    // gates data-plane cost, not metric kernels).
    let traj_for = |i: usize| -> Trajectory {
        (0..16)
            .map(|t| {
                let h = tmn_index::splitmix64((i as u64) * 131 + t as u64);
                Point {
                    lon: (h % 10_000) as f64 / 10_000.0 + (i % 7) as f64 * 0.1,
                    lat: ((h >> 16) % 10_000) as f64 / 10_000.0,
                }
            })
            .collect()
    };
    let trajs: Vec<Trajectory> = (0..corpus_n).map(traj_for).collect();

    // Streaming corpus write -> MB/s.
    let corpus_path = dir.join("corpus.tmns");
    let t0 = Instant::now();
    let mut w = CorpusWriter::create(&corpus_path).expect("corpus writer");
    for t in &trajs {
        w.push(t).expect("corpus push");
    }
    w.finish().expect("corpus finish");
    let build_s = t0.elapsed().as_secs_f64();
    let file_bytes = std::fs::metadata(&corpus_path).expect("corpus metadata").len() as usize;
    let build_mb_s = file_bytes as f64 / 1e6 / build_s.max(1e-12);

    // mmap open latency (open + header/index CRC validation), best of 5.
    let mut open_ns = f64::INFINITY;
    for _ in 0..5 {
        let t0 = Instant::now();
        let f = CorpusFile::open(&corpus_path).expect("corpus open");
        open_ns = open_ns.min(t0.elapsed().as_nanos() as f64);
        std::hint::black_box(&f);
    }

    // Blocked out-of-core ground truth, peak-heap accounted.
    let gt_path = dir.join("gt.tmns");
    let live_before = memory::live_bytes();
    memory::reset_peak();
    let t0 = Instant::now();
    let blocked = BlockedDistanceMatrix::compute(
        &gt_path,
        &trajs,
        Metric::Hausdorff,
        &MetricParams::default(),
        threads,
        tile,
    )
    .expect("blocked ground truth");
    let gt_blocked_wall_s = t0.elapsed().as_secs_f64();
    let gt_blocked_peak_bytes = memory::peak_bytes().saturating_sub(live_before) as usize;
    let gt_full_matrix_bytes = corpus_n * corpus_n * std::mem::size_of::<f64>();
    if memory::is_active() {
        assert!(
            gt_blocked_peak_bytes < gt_full_matrix_bytes,
            "blocked ground truth peaked at {gt_blocked_peak_bytes} B, not below the              {gt_full_matrix_bytes} B full-materialization footprint"
        );
    }

    // The dense in-RAM build of the same matrix, for the wall comparison.
    let t0 = Instant::now();
    let dense = DistanceMatrix::compute(&trajs, Metric::Hausdorff, &MetricParams::default(), threads);
    let gt_inram_wall_s = t0.elapsed().as_secs_f64();
    assert_eq!(
        dense.get(1, corpus_n - 1).to_bits(),
        blocked.get(1, corpus_n - 1).to_bits(),
        "blocked/dense ground truth diverged (spot check)"
    );
    drop(dense);

    // Cheap deterministic endpoint embeddings -> CRC-framed file -> mmap.
    let vecs: Vec<Vec<f32>> = trajs
        .iter()
        .map(|t| {
            let pts = t.points();
            let (a, b) = (&pts[0], &pts[pts.len() - 1]);
            vec![a.lon as f32, a.lat as f32, b.lon as f32, b.lat as f32]
        })
        .collect();
    let emb_path = dir.join("emb.tmns");
    EmbeddingStore::from_vectors(&vecs).save(&emb_path).expect("embeddings save");
    let store = EmbeddingStore::open_mmap(&emb_path).expect("embeddings mmap");

    // Shard-per-core Table II evaluation straight off the two stores.
    let eval_queries = 200.min(corpus_n);
    let queries: Vec<usize> =
        (0..eval_queries).map(|i| i * corpus_n / eval_queries.max(1)).collect();
    let truth: &dyn GroundTruth = &blocked;
    let t0 = Instant::now();
    let eval = tmn_eval::evaluate_sharded(&store, truth, &queries, threads);
    let eval_s = t0.elapsed().as_secs_f64();

    StoreRow {
        corpus_n,
        tile,
        file_bytes,
        build_mb_s,
        mmap_open_ns: open_ns,
        gt_blocked_wall_s,
        gt_inram_wall_s,
        gt_blocked_peak_bytes,
        gt_full_matrix_bytes,
        eval_qps: queries.len() as f64 / eval_s.max(1e-12),
        eval_queries,
        eval_shards: threads,
        hr10: eval.hr10,
    }
}

fn main() {
    let scale = Scale::from_args();
    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let size = scale.dataset_size();
    let dim = scale.dim();
    eprintln!("throughput bench — scale {} ({host_cores} host cores)", scale.name());

    let ds = Dataset::generate(&DatasetConfig::new(DatasetKind::PortoLike, size, 42));
    let dmat = ds.train_distance_matrix(Metric::Dtw, &MetricParams::default(), host_cores);

    metrics::set_enabled(true);
    metrics::reset();

    let mut training = Vec::new();
    let mut serial_sps = 0.0f64;
    for threads in [1usize, 2, 4] {
        let (sps, pps) = bench_training(&ds, &dmat, dim, threads);
        if threads == 1 {
            serial_sps = sps;
        }
        eprintln!("  threads={threads}: {sps:.2} steps/s ({pps:.0} pairs/s)");
        training.push(TrainRow {
            threads,
            steps_per_sec: sps,
            pairs_per_sec: pps,
            speedup_vs_serial: sps / serial_sps,
        });
    }

    let mut kernel_rows = Vec::new();
    for (m, k, n) in [(64usize, 64usize, 64usize), (128, 128, 128), (48, 256, 48)] {
        let a: Vec<f32> = (0..m * k).map(|x| (x % 17) as f32 / 17.0 - 0.5).collect();
        let b: Vec<f32> = (0..k * n).map(|x| (x % 13) as f32 / 13.0 - 0.5).collect();
        let flops = 2 * m * k * n;
        let naive = bench_kernel(
            |a, b, out| kernels::reference::mm_nn(a, b, m, k, n, out),
            &a, &b, m * n, flops,
        );
        tmn_autograd::simd::force_scalar(true);
        let scalar = bench_kernel(
            |a, b, out| kernels::mm_nn(a, b, m, k, n, out),
            &a, &b, m * n, flops,
        );
        tmn_autograd::simd::force_scalar(false);
        let blocked = bench_kernel(
            |a, b, out| kernels::mm_nn(a, b, m, k, n, out),
            &a, &b, m * n, flops,
        );
        eprintln!(
            "  mm_nn {m}x{k}x{n}: naive {naive:.2} vs blocked-scalar {scalar:.2} \
             vs blocked-{} {blocked:.2} GFLOP/s",
            tmn_autograd::simd::dispatch_name()
        );
        kernel_rows.push(KernelRow {
            kernel: "mm_nn".to_string(),
            m, k, n,
            naive_gflops: naive,
            scalar_gflops: scalar,
            blocked_gflops: blocked,
            speedup: blocked / naive,
            simd_speedup: blocked / scalar,
        });
    }

    let infer = bench_inference(&ds, dim);
    eprintln!(
        "  infer ({}): {:.0} traj/s tape-free ({:.2}x vs graphed), \
         embed p50 {:.0}ns p99 {:.0}ns, index {}B int8 vs {}B f32",
        infer.simd_dispatch,
        infer.infer_qps,
        infer.nograd_speedup,
        infer.embed_ns_p50,
        infer.embed_ns_p99,
        infer.index_bytes,
        infer.index_f32_bytes,
    );

    let store = bench_store(scale);
    eprintln!(
        "  store (n={}): corpus {:.1} MB at {:.0} MB/s, mmap open {:.0}ns, \
         GT blocked {:.1}s (peak {} B) vs in-RAM {:.1}s (full {} B), \
         eval {:.0} q/s on {} shards, HR-10 {:.3}",
        store.corpus_n,
        store.file_bytes as f64 / 1e6,
        store.build_mb_s,
        store.mmap_open_ns,
        store.gt_blocked_wall_s,
        store.gt_blocked_peak_bytes,
        store.gt_inram_wall_s,
        store.gt_full_matrix_bytes,
        store.eval_qps,
        store.eval_shards,
        store.hr10,
    );

    let serve = bench_serve(&ds, dim);
    eprintln!(
        "  serve ({} shards, {} vectors): {:.0} inserts/s, {:.0} batched q/s end-to-end, \
         query p50 {:.0}ns p99 {:.0}ns under churn, imbalance {:.3}",
        serve.shards,
        serve.corpus,
        serve.insert_qps,
        serve.batch_qps,
        serve.query_p50_ns,
        serve.query_p99_ns,
        serve.shard_imbalance,
    );

    let stream = bench_stream(&ds, dim);
    eprintln!(
        "  stream ({} streams, {} appends): {:.0} appends/s, p50 {:.0}ns p99 {:.0}ns, \
         reindex ratio {:.3} under reembed_min_delta",
        stream.streams,
        stream.appends,
        stream.appends_per_sec,
        stream.append_ns_p50,
        stream.append_ns_p99,
        stream.reindex_ratio,
    );

    let trace = bench_trace(&ds, dim);
    eprintln!(
        "  trace ({} queries): {:.0} q/s off vs {:.0} q/s capture-all ({:+.1}% overhead), \
         {:.1} spans/query, {} traces in flight recorder",
        trace.traced_queries,
        trace.trace_off_qps,
        trace.trace_on_qps,
        trace.overhead_pct,
        trace.spans_per_query,
        trace.flight_captured,
    );

    let mut table = Table::new(&["Threads", "Steps/s", "Pairs/s", "Speedup"]);
    for r in &training {
        table.row(&[
            r.threads.to_string(),
            format!("{:.2}", r.steps_per_sec),
            format!("{:.0}", r.pairs_per_sec),
            format!("{:.2}x", r.speedup_vs_serial),
        ]);
    }
    println!();
    table.print();

    let report = Report {
        host_cores,
        batch_pairs: 64,
        dim,
        train_trajectories: ds.train.len(),
        training,
        kernels: kernel_rows,
        infer,
        serve,
        stream,
        trace,
        store,
        metrics: metrics::snapshot(),
        note: "Data-parallel workers run on scoped OS threads; on a single-core host the \
               remaining gain comes from per-chunk padding (each worker pads to its chunk's \
               longest trajectory, not the batch maximum). Multi-core hosts additionally get \
               real parallel speedup."
            .to_string(),
    };
    write_json("BENCH_throughput", &report).expect("write results");
}
