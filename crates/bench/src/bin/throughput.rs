//! Training-throughput benchmark: serial vs data-parallel gradient steps,
//! naive-vs-blocked GEMM kernel microbenchmarks, and the tape-free
//! inference fast path (embed qps, per-call latency percentiles, and the
//! int8-quantized index footprint).
//!
//! Trains TMN under the paper's default recipe (batch of 64 pairs) at
//! several worker counts and reports steps/second; then times the scalar
//! reference kernels against the cache-blocked ones at a few GEMM shapes;
//! then benches `embed_nograd` against the graphed forward.
//!
//! Usage: `cargo run -p tmn-bench --release --bin throughput [--quick|--full]`
//!
//! Results land in `results/BENCH_throughput.json`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use tmn::prelude::*;
use tmn_autograd::kernels;
use tmn_bench::{write_json, Scale, Table};
use tmn_eval::time_inference_split;
use tmn_obs::metrics;

#[derive(serde::Serialize)]
struct TrainRow {
    threads: usize,
    steps_per_sec: f64,
    pairs_per_sec: f64,
    speedup_vs_serial: f64,
}

#[derive(serde::Serialize)]
struct KernelRow {
    kernel: String,
    m: usize,
    k: usize,
    n: usize,
    naive_gflops: f64,
    /// Cache-blocked kernel with SIMD dispatch forced to the scalar tile.
    scalar_gflops: f64,
    /// Cache-blocked kernel under the host's best dispatch (AVX2+FMA here).
    blocked_gflops: f64,
    speedup: f64,
    /// blocked (dispatched) over blocked (forced scalar): the SIMD win alone.
    simd_speedup: f64,
}

#[derive(serde::Serialize)]
struct InferRow {
    /// Active SIMD path ("avx2" / "scalar"). A string, so `bench_diff`
    /// reports it as informational rather than gating it — two captures on
    /// different hosts should not fail the gate over hardware.
    simd_dispatch: String,
    trajectories: usize,
    /// Tape-free trajectories embedded per second (batched encode, batch 16).
    infer_qps: f64,
    /// Graphed wall / tape-free wall over the same encode workload — the
    /// autograd overhead the serving path skips.
    nograd_speedup: f64,
    /// Single-pair `embed_nograd` latency percentiles in nanoseconds.
    embed_ns_p50: f64,
    embed_ns_p99: f64,
    /// Vector bytes held by the int8-quantized HNSW index vs the f32 one.
    index_bytes: usize,
    index_f32_bytes: usize,
}

#[derive(serde::Serialize)]
struct Report {
    host_cores: usize,
    batch_pairs: usize,
    dim: usize,
    train_trajectories: usize,
    training: Vec<TrainRow>,
    kernels: Vec<KernelRow>,
    infer: InferRow,
    /// Training-side metrics registry at end of run (`train_batch_ns`
    /// histogram, batch counter, wall/memory gauges) — the payload
    /// `bench_diff` gates across two captures.
    metrics: tmn_obs::MetricsSnapshot,
    note: String,
}

/// Steps/second for one worker count: one warm-up epoch (fills the
/// sub-trajectory prefix cache), then a timed epoch.
fn bench_training(ds: &Dataset, dmat: &DistanceMatrix, dim: usize, threads: usize) -> (f64, f64) {
    let mcfg = ModelConfig { dim, seed: 42 };
    let model = ModelKind::Tmn.build(&mcfg);
    let cfg = TrainConfig { epochs: 2, batch_pairs: 64, threads, ..Default::default() };
    let mut trainer = Trainer::new(
        model.as_ref(),
        &ds.train,
        dmat,
        Metric::Dtw,
        MetricParams::default(),
        Box::new(RankSampler),
        cfg.clone(),
        None,
    )
    .with_replicas(ModelKind::Tmn, mcfg);
    trainer.train_epoch(0); // warm-up: prefix cache + allocator
    let timed = trainer.train_epoch(1);
    let steps = (timed.pairs as f64 / cfg.batch_pairs as f64).max(1.0);
    (steps / timed.seconds, timed.pairs as f64 / timed.seconds)
}

/// GFLOP/s of one kernel over `reps` runs on freshly filled buffers.
fn bench_kernel(f: impl Fn(&[f32], &[f32], &mut [f32]), a: &[f32], b: &[f32], out_len: usize, flops: usize) -> f64 {
    let mut out = vec![0.0f32; out_len];
    f(a, b, &mut out); // warm-up
    let reps = (2_000_000_000 / flops).clamp(3, 200);
    let t0 = Instant::now();
    for _ in 0..reps {
        out.iter_mut().for_each(|v| *v = 0.0);
        f(a, b, &mut out);
    }
    let secs = t0.elapsed().as_secs_f64();
    std::hint::black_box(&out);
    (reps * flops) as f64 / secs / 1e9
}

/// Benchmark the tape-free serving path: batched encode throughput and
/// speedup over the graphed forward, single-pair latency percentiles, and
/// the quantized-index footprint over the encoded set.
fn bench_inference(ds: &Dataset, dim: usize) -> InferRow {
    let model = ModelKind::Tmn.build(&ModelConfig { dim, seed: 42 });
    let n = ds.test.len().min(64);
    let trajs = &ds.test[..n];

    let split = time_inference_split(model.as_ref(), trajs, 16);
    let infer_qps = split.trajectories as f64 / split.nograd_s.max(1e-12);

    // Single-pair latency: batch construction stays outside the clock so
    // the percentiles cover the model forward only.
    for t in trajs.iter().take(8) {
        let batch = PairBatch::build(&[t], &[t]);
        std::hint::black_box(model.embed_nograd(&batch.a, &batch.b));
    }
    let mut samples: Vec<f64> = Vec::new();
    let reps = 200usize.div_ceil(n.max(1));
    for _ in 0..reps {
        for t in trajs {
            let batch = PairBatch::build(&[t], &[t]);
            let t0 = Instant::now();
            let out = model.embed_nograd(&batch.a, &batch.b).expect("TMN has a tape-free path");
            let ns = t0.elapsed().as_nanos() as f64;
            std::hint::black_box(&out);
            samples.push(ns);
        }
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: usize| samples[(samples.len() * p / 100).min(samples.len() - 1)];

    let emb = encode_all(model.as_ref(), trajs, 16);
    let store = EmbeddingStore::from_vectors(&emb);
    let mut rng = StdRng::seed_from_u64(7);
    let index_bytes = store.build_hnsw_quantized(HnswConfig::default(), &mut rng).memory_bytes();
    let mut rng = StdRng::seed_from_u64(7);
    let index_f32_bytes = store.build_hnsw(HnswConfig::default(), &mut rng).memory_bytes();

    InferRow {
        simd_dispatch: tmn_autograd::simd::dispatch_name().to_string(),
        trajectories: n,
        infer_qps,
        nograd_speedup: split.speedup(),
        embed_ns_p50: pct(50),
        embed_ns_p99: pct(99),
        index_bytes,
        index_f32_bytes,
    }
}

fn main() {
    let scale = Scale::from_args();
    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let size = scale.dataset_size();
    let dim = scale.dim();
    eprintln!("throughput bench — scale {} ({host_cores} host cores)", scale.name());

    let ds = Dataset::generate(&DatasetConfig::new(DatasetKind::PortoLike, size, 42));
    let dmat = ds.train_distance_matrix(Metric::Dtw, &MetricParams::default(), host_cores);

    metrics::set_enabled(true);
    metrics::reset();

    let mut training = Vec::new();
    let mut serial_sps = 0.0f64;
    for threads in [1usize, 2, 4] {
        let (sps, pps) = bench_training(&ds, &dmat, dim, threads);
        if threads == 1 {
            serial_sps = sps;
        }
        eprintln!("  threads={threads}: {sps:.2} steps/s ({pps:.0} pairs/s)");
        training.push(TrainRow {
            threads,
            steps_per_sec: sps,
            pairs_per_sec: pps,
            speedup_vs_serial: sps / serial_sps,
        });
    }

    let mut kernel_rows = Vec::new();
    for (m, k, n) in [(64usize, 64usize, 64usize), (128, 128, 128), (48, 256, 48)] {
        let a: Vec<f32> = (0..m * k).map(|x| (x % 17) as f32 / 17.0 - 0.5).collect();
        let b: Vec<f32> = (0..k * n).map(|x| (x % 13) as f32 / 13.0 - 0.5).collect();
        let flops = 2 * m * k * n;
        let naive = bench_kernel(
            |a, b, out| kernels::reference::mm_nn(a, b, m, k, n, out),
            &a, &b, m * n, flops,
        );
        tmn_autograd::simd::force_scalar(true);
        let scalar = bench_kernel(
            |a, b, out| kernels::mm_nn(a, b, m, k, n, out),
            &a, &b, m * n, flops,
        );
        tmn_autograd::simd::force_scalar(false);
        let blocked = bench_kernel(
            |a, b, out| kernels::mm_nn(a, b, m, k, n, out),
            &a, &b, m * n, flops,
        );
        eprintln!(
            "  mm_nn {m}x{k}x{n}: naive {naive:.2} vs blocked-scalar {scalar:.2} \
             vs blocked-{} {blocked:.2} GFLOP/s",
            tmn_autograd::simd::dispatch_name()
        );
        kernel_rows.push(KernelRow {
            kernel: "mm_nn".to_string(),
            m, k, n,
            naive_gflops: naive,
            scalar_gflops: scalar,
            blocked_gflops: blocked,
            speedup: blocked / naive,
            simd_speedup: blocked / scalar,
        });
    }

    let infer = bench_inference(&ds, dim);
    eprintln!(
        "  infer ({}): {:.0} traj/s tape-free ({:.2}x vs graphed), \
         embed p50 {:.0}ns p99 {:.0}ns, index {}B int8 vs {}B f32",
        infer.simd_dispatch,
        infer.infer_qps,
        infer.nograd_speedup,
        infer.embed_ns_p50,
        infer.embed_ns_p99,
        infer.index_bytes,
        infer.index_f32_bytes,
    );

    let mut table = Table::new(&["Threads", "Steps/s", "Pairs/s", "Speedup"]);
    for r in &training {
        table.row(&[
            r.threads.to_string(),
            format!("{:.2}", r.steps_per_sec),
            format!("{:.0}", r.pairs_per_sec),
            format!("{:.2}x", r.speedup_vs_serial),
        ]);
    }
    println!();
    table.print();

    let report = Report {
        host_cores,
        batch_pairs: 64,
        dim,
        train_trajectories: ds.train.len(),
        training,
        kernels: kernel_rows,
        infer,
        metrics: metrics::snapshot(),
        note: "Data-parallel workers run on scoped OS threads; on a single-core host the \
               remaining gain comes from per-chunk padding (each worker pads to its chunk's \
               longest trajectory, not the batch maximum). Multi-core hosts additionally get \
               real parallel speedup."
            .to_string(),
    };
    write_json("BENCH_throughput", &report).expect("write results");
}
