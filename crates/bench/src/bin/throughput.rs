//! Training-throughput benchmark: serial vs data-parallel gradient steps,
//! plus naive-vs-blocked GEMM kernel microbenchmarks.
//!
//! Trains TMN under the paper's default recipe (batch of 64 pairs) at
//! several worker counts and reports steps/second; then times the scalar
//! reference kernels against the cache-blocked ones at a few GEMM shapes.
//!
//! Usage: `cargo run -p tmn-bench --release --bin throughput [--quick|--full]`
//!
//! Results land in `results/BENCH_throughput.json`.

use std::time::Instant;
use tmn::prelude::*;
use tmn_autograd::kernels;
use tmn_bench::{write_json, Scale, Table};
use tmn_obs::metrics;

#[derive(serde::Serialize)]
struct TrainRow {
    threads: usize,
    steps_per_sec: f64,
    pairs_per_sec: f64,
    speedup_vs_serial: f64,
}

#[derive(serde::Serialize)]
struct KernelRow {
    kernel: String,
    m: usize,
    k: usize,
    n: usize,
    naive_gflops: f64,
    blocked_gflops: f64,
    speedup: f64,
}

#[derive(serde::Serialize)]
struct Report {
    host_cores: usize,
    batch_pairs: usize,
    dim: usize,
    train_trajectories: usize,
    training: Vec<TrainRow>,
    kernels: Vec<KernelRow>,
    /// Training-side metrics registry at end of run (`train_batch_ns`
    /// histogram, batch counter, wall/memory gauges) — the payload
    /// `bench_diff` gates across two captures.
    metrics: tmn_obs::MetricsSnapshot,
    note: String,
}

/// Steps/second for one worker count: one warm-up epoch (fills the
/// sub-trajectory prefix cache), then a timed epoch.
fn bench_training(ds: &Dataset, dmat: &DistanceMatrix, dim: usize, threads: usize) -> (f64, f64) {
    let mcfg = ModelConfig { dim, seed: 42 };
    let model = ModelKind::Tmn.build(&mcfg);
    let cfg = TrainConfig { epochs: 2, batch_pairs: 64, threads, ..Default::default() };
    let mut trainer = Trainer::new(
        model.as_ref(),
        &ds.train,
        dmat,
        Metric::Dtw,
        MetricParams::default(),
        Box::new(RankSampler),
        cfg.clone(),
        None,
    )
    .with_replicas(ModelKind::Tmn, mcfg);
    trainer.train_epoch(0); // warm-up: prefix cache + allocator
    let timed = trainer.train_epoch(1);
    let steps = (timed.pairs as f64 / cfg.batch_pairs as f64).max(1.0);
    (steps / timed.seconds, timed.pairs as f64 / timed.seconds)
}

/// GFLOP/s of one kernel over `reps` runs on freshly filled buffers.
fn bench_kernel(f: impl Fn(&[f32], &[f32], &mut [f32]), a: &[f32], b: &[f32], out_len: usize, flops: usize) -> f64 {
    let mut out = vec![0.0f32; out_len];
    f(a, b, &mut out); // warm-up
    let reps = (2_000_000_000 / flops).clamp(3, 200);
    let t0 = Instant::now();
    for _ in 0..reps {
        out.iter_mut().for_each(|v| *v = 0.0);
        f(a, b, &mut out);
    }
    let secs = t0.elapsed().as_secs_f64();
    std::hint::black_box(&out);
    (reps * flops) as f64 / secs / 1e9
}

fn main() {
    let scale = Scale::from_args();
    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let size = scale.dataset_size();
    let dim = scale.dim();
    eprintln!("throughput bench — scale {} ({host_cores} host cores)", scale.name());

    let ds = Dataset::generate(&DatasetConfig::new(DatasetKind::PortoLike, size, 42));
    let dmat = ds.train_distance_matrix(Metric::Dtw, &MetricParams::default(), host_cores);

    metrics::set_enabled(true);
    metrics::reset();

    let mut training = Vec::new();
    let mut serial_sps = 0.0f64;
    for threads in [1usize, 2, 4] {
        let (sps, pps) = bench_training(&ds, &dmat, dim, threads);
        if threads == 1 {
            serial_sps = sps;
        }
        eprintln!("  threads={threads}: {sps:.2} steps/s ({pps:.0} pairs/s)");
        training.push(TrainRow {
            threads,
            steps_per_sec: sps,
            pairs_per_sec: pps,
            speedup_vs_serial: sps / serial_sps,
        });
    }

    let mut kernel_rows = Vec::new();
    for (m, k, n) in [(64usize, 64usize, 64usize), (128, 128, 128), (48, 256, 48)] {
        let a: Vec<f32> = (0..m * k).map(|x| (x % 17) as f32 / 17.0 - 0.5).collect();
        let b: Vec<f32> = (0..k * n).map(|x| (x % 13) as f32 / 13.0 - 0.5).collect();
        let flops = 2 * m * k * n;
        let naive = bench_kernel(
            |a, b, out| kernels::reference::mm_nn(a, b, m, k, n, out),
            &a, &b, m * n, flops,
        );
        let blocked = bench_kernel(
            |a, b, out| kernels::mm_nn(a, b, m, k, n, out),
            &a, &b, m * n, flops,
        );
        eprintln!("  mm_nn {m}x{k}x{n}: naive {naive:.2} vs blocked {blocked:.2} GFLOP/s");
        kernel_rows.push(KernelRow {
            kernel: "mm_nn".to_string(),
            m, k, n,
            naive_gflops: naive,
            blocked_gflops: blocked,
            speedup: blocked / naive,
        });
    }

    let mut table = Table::new(&["Threads", "Steps/s", "Pairs/s", "Speedup"]);
    for r in &training {
        table.row(&[
            r.threads.to_string(),
            format!("{:.2}", r.steps_per_sec),
            format!("{:.0}", r.pairs_per_sec),
            format!("{:.2}x", r.speedup_vs_serial),
        ]);
    }
    println!();
    table.print();

    let report = Report {
        host_cores,
        batch_pairs: 64,
        dim,
        train_trajectories: ds.train.len(),
        training,
        kernels: kernel_rows,
        metrics: metrics::snapshot(),
        note: "Data-parallel workers run on scoped OS threads; on a single-core host the \
               remaining gain comes from per-chunk padding (each worker pads to its chunk's \
               longest trajectory, not the batch maximum). Multi-core hosts additionally get \
               real parallel speedup."
            .to_string(),
    };
    write_json("BENCH_throughput", &report).expect("write results");
}
