//! CI smoke for the serving engine: drive one `ServeEngine` through its
//! whole lifecycle — insert → query → delete → query → fault → degraded
//! serving → cache corruption → recovery → status → shutdown — and fail
//! loudly if any step misbehaves.
//!
//! Runs in a couple of seconds; wired into `scripts/ci.sh` after
//! `resume_smoke`.

use tmn_core::{ModelConfig, ModelKind};
use tmn_obs::{export, metrics};
use tmn_serve::{ServeConfig, ServeEngine, ServeError, ShardSetConfig};
use tmn_traj::{Point, Trajectory};

fn traj(seed: u64, len: usize) -> Trajectory {
    let pts = (0..len)
        .map(|i| {
            let h = tmn_index::splitmix64(seed * 131 + i as u64);
            Point::new((h % 1000) as f64 / 1000.0, ((h >> 10) % 1000) as f64 / 1000.0)
        })
        .collect();
    Trajectory::new(pts)
}

fn main() {
    metrics::set_enabled(true);
    metrics::reset();

    // Full TMN is pair-dependent: the engine must refuse it up front.
    let rejected = ServeEngine::start(
        ModelKind::Tmn,
        &ModelConfig { dim: 16, seed: 9 },
        ServeConfig::default(),
    );
    assert!(
        matches!(rejected, Err(ServeError::PairDependentModel(_))),
        "pair-dependent model must be rejected"
    );

    let engine = ServeEngine::start(
        ModelKind::TmnNm,
        &ModelConfig { dim: 16, seed: 9 },
        ServeConfig {
            shard: ShardSetConfig { shards: 3, shortlist: 48, ..Default::default() },
            max_batch: 16,
            ..Default::default()
        },
    )
    .expect("start serve engine");
    let h = engine.handle();

    // Insert, then query: each corpus trajectory is its own nearest
    // neighbour at ~zero distance.
    for id in 0..64u64 {
        h.insert(id, traj(id, 12)).expect("insert");
    }
    let top = h.query(traj(17, 12), 5).expect("query");
    assert_eq!(top[0].0, 17, "self-NN failed: {top:?}");
    assert!(top[0].1 <= 1e-6, "self-distance {} not ~0", top[0].1);

    // Delete, then query: the id must be gone everywhere.
    assert!(h.delete(17).expect("delete"), "delete of live id returned false");
    let after = h.query(traj(17, 12), 64).expect("query after delete");
    assert!(after.iter().all(|&(id, _)| id != 17), "deleted id resurfaced");
    assert_eq!(h.query_id(17, 5), Err(ServeError::UnknownId(17)), "deleted id still queryable");

    // Corrupt the warm cache; the checksum must catch it and the engine
    // recompute instead of serving garbage.
    let clean = h.query_id(23, 5).expect("by-id query");
    assert!(h.corrupt_cache(23).expect("corrupt hook"), "id 23 was not cached");
    assert_eq!(h.query_id(23, 5).expect("post-corruption query"), clean, "corrupt cache served");

    // Poison one shard the way a crashed writer would; the engine keeps
    // serving from the remaining shards and reports degraded mode.
    eprintln!("injecting shard fault (the panic printed below is expected and caught):");
    engine.shards().fault_poison(1);
    let status = h.status().expect("status");
    assert!(status.degraded_mode, "degraded mode not reported");
    assert!(status.to_json().contains("\"degraded_mode\":true"));
    let degraded_hits = h.query(traj(3, 12), 5).expect("degraded query");
    assert!(!degraded_hits.is_empty(), "engine went dark in degraded mode");

    // The gauges flow through the Prometheus exporter.
    let prom = export::to_prometheus(&metrics::snapshot());
    for needle in ["tmn_serve_degraded_shards 1", "tmn_shard_imbalance", "tmn_serve_batch_size"] {
        assert!(prom.contains(needle), "exposition lacks {needle}:\n{prom}");
    }

    engine.shutdown();
    println!(
        "serve smoke OK: lifecycle, degraded-mode serving ({} healthy shards), cache recovery",
        status.shards.shards.iter().filter(|s| !s.degraded).count()
    );
}
