//! Perf regression gate over two results JSON files.
//!
//! Flattens the numeric leaves of a base and a head file (e.g. two
//! `results/BENCH_throughput.json` captures from different commits) into
//! dotted paths, classifies each metric's improvement direction from its
//! name, applies a noise threshold (default ±5 %, per-metric overrides),
//! prints a markdown delta table, and exits nonzero when any gated metric
//! regressed beyond its threshold.
//!
//! ```text
//! bench_diff <base.json> <head.json> [--threshold 0.05] [--metric SUBSTR=FRAC]...
//! bench_diff --self-check <file.json> [--threshold 0.05]
//! ```
//!
//! Direction heuristics (on the leaf name):
//! - higher-better: `*per_sec`, `*gflops`, `*speedup`, `*throughput`,
//!   `*qps*`, `hr*`/`recall*`/`r10*`, `coverage`, `*_mb_s` (bandwidth —
//!   matched before the `_s` duration suffix would misread it as a time)
//! - lower-better: `*_ns*` (including percentile leaves like `embed_ns_p99`),
//!   `*_ms`, `*_s`, `*seconds`, `*wall*`, `*latency*`, `*_bytes`/`*bytes`,
//!   `*time*`, `*imbalance*` (max/mean shard occupancy: 1.0 is perfect,
//!   growth is skew)
//! - anything else is informational: reported, never gated (strings such as
//!   `simd_dispatch` never reach classification — only numeric leaves do).
//!
//! `--self-check FILE` is the CI smoke: FILE diffed against itself must
//! pass (exit 0 path), and against a synthetically perturbed copy (every
//! gated metric worsened by 3× its threshold) must fail — proving the gate
//! can actually fire before anyone trusts it.

use serde::Value;
use std::process::ExitCode;

/// Improvement direction of one metric, derived from its name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    HigherBetter,
    LowerBetter,
    Info,
}

fn classify(path: &str) -> Direction {
    let leaf = path.rsplit('.').next().unwrap_or(path).to_ascii_lowercase();
    // Exemplar fields ride along with histogram snapshots but carry one
    // arbitrary traced observation plus its trace id — not aggregates, so
    // they must never gate (decided first: `exemplar_ns` would otherwise
    // match the `_ns` latency rule below).
    if leaf.contains("exemplar") || leaf.ends_with("_id") {
        return Direction::Info;
    }
    const HIGHER: &[&str] = &["per_sec", "gflops", "speedup", "throughput", "coverage", "qps"];
    if HIGHER.iter().any(|t| leaf.contains(t))
        || leaf.starts_with("hr")
        || leaf.starts_with("recall")
        || leaf.starts_with("r10")
    {
        return Direction::HigherBetter;
    }
    // Bandwidth leaves (`build_mb_s`, `scan_mb_s`, ...) are higher-better
    // and MUST be decided before the `_s` duration suffix below, which
    // would otherwise gate a throughput gain as a latency regression.
    if leaf.ends_with("_mb_s") {
        return Direction::HigherBetter;
    }
    const LOWER_SUFFIX: &[&str] = &["_ns", "_ms", "_s", "_bytes"];
    // `_ns` appears as a substring too so percentile leaves (`embed_ns_p99`)
    // gate as latencies even though they don't *end* with the unit.
    // `overhead` covers `trace.overhead_pct`: instrumentation cost gates
    // downward like a latency.
    const LOWER_SUBSTR: &[&str] =
        &["seconds", "wall", "latency", "bytes", "time", "_ns", "imbalance", "overhead"];
    if LOWER_SUFFIX.iter().any(|t| leaf.ends_with(t))
        || LOWER_SUBSTR.iter().any(|t| leaf.contains(t))
    {
        return Direction::LowerBetter;
    }
    Direction::Info
}

/// Flatten every numeric leaf of a JSON value into `(dotted.path, f64)`.
fn flatten(value: &Value, prefix: &str, out: &mut Vec<(String, f64)>) {
    match value {
        Value::Int(i) => out.push((prefix.to_string(), *i as f64)),
        Value::Float(f) => {
            if f.is_finite() {
                out.push((prefix.to_string(), *f));
            }
        }
        Value::Seq(items) => {
            for (i, item) in items.iter().enumerate() {
                flatten(item, &format!("{prefix}[{i}]"), out);
            }
        }
        Value::Map(entries) => {
            for (k, v) in entries {
                let path = if prefix.is_empty() { k.clone() } else { format!("{prefix}.{k}") };
                flatten(v, &path, out);
            }
        }
        Value::Null | Value::Bool(_) | Value::Str(_) => {}
    }
}

/// Per-metric threshold overrides: first substring match wins.
struct Thresholds {
    default: f64,
    overrides: Vec<(String, f64)>,
}

impl Thresholds {
    fn for_metric(&self, path: &str) -> f64 {
        self.overrides
            .iter()
            .find(|(substr, _)| path.contains(substr.as_str()))
            .map(|&(_, frac)| frac)
            .unwrap_or(self.default)
    }
}

#[derive(Debug, PartialEq)]
struct DiffRow {
    path: String,
    base: f64,
    head: f64,
    /// Relative delta (head-base)/|base|; None when base == 0.
    delta: Option<f64>,
    direction: Direction,
    threshold: f64,
    regressed: bool,
}

/// Diff two flattened metric maps. Only keys present in both are gated;
/// added/removed keys are reported separately by the caller.
fn diff_metrics(
    base: &[(String, f64)],
    head: &[(String, f64)],
    thresholds: &Thresholds,
) -> Vec<DiffRow> {
    let head_map: std::collections::HashMap<&str, f64> =
        head.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    let mut rows = Vec::new();
    for (path, base_v) in base {
        let Some(&head_v) = head_map.get(path.as_str()) else { continue };
        let direction = classify(path);
        let threshold = thresholds.for_metric(path);
        let delta = (*base_v != 0.0).then(|| (head_v - base_v) / base_v.abs());
        let regressed = match (direction, delta) {
            (Direction::HigherBetter, Some(d)) => d < -threshold,
            (Direction::LowerBetter, Some(d)) => d > threshold,
            _ => false,
        };
        rows.push(DiffRow { path: path.clone(), base: *base_v, head: head_v, delta, direction, threshold, regressed });
    }
    rows
}

fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v}")
    } else if v.abs() >= 1e4 || (v != 0.0 && v.abs() < 1e-3) {
        format!("{v:.4e}")
    } else {
        format!("{v:.5}")
    }
}

/// Render the markdown delta table. `verbose` includes unchanged metrics;
/// otherwise only changed or regressed rows appear.
fn markdown_table(rows: &[DiffRow], verbose: bool) -> String {
    let mut out = String::new();
    out.push_str("| metric | base | head | Δ% | gate | status |\n");
    out.push_str("|---|---:|---:|---:|---:|---|\n");
    for r in rows {
        let changed = r.delta.map(|d| d.abs() > 1e-12).unwrap_or(r.base != r.head);
        if !verbose && !changed && !r.regressed {
            continue;
        }
        let delta = match r.delta {
            Some(d) => format!("{:+.2}%", d * 100.0),
            None => "n/a".to_string(),
        };
        let gate = match r.direction {
            Direction::HigherBetter => format!("≥ -{:.0}%", r.threshold * 100.0),
            Direction::LowerBetter => format!("≤ +{:.0}%", r.threshold * 100.0),
            Direction::Info => "info".to_string(),
        };
        let status = if r.regressed { "**REGRESSED**" } else { "ok" };
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} |\n",
            r.path,
            fmt_value(r.base),
            fmt_value(r.head),
            delta,
            gate,
            status
        ));
    }
    out
}

fn load_flat(path: &str) -> Result<Vec<(String, f64)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let value = serde_json::from_str(&text).map_err(|e| format!("parse {path}: {e:?}"))?;
    let mut flat = Vec::new();
    flatten(&value, "", &mut flat);
    Ok(flat)
}

/// Worsen every gated metric by `factor × threshold` — the synthetic
/// regression used by `--self-check`.
fn perturb(base: &[(String, f64)], thresholds: &Thresholds, factor: f64) -> Vec<(String, f64)> {
    base.iter()
        .map(|(path, v)| {
            let scale = 1.0 + factor * thresholds.for_metric(path);
            let v = match classify(path) {
                Direction::HigherBetter => v / scale,
                Direction::LowerBetter => v * scale,
                Direction::Info => *v,
            };
            (path.clone(), v)
        })
        .collect()
}

fn run_diff(base: &str, head: &str, thresholds: &Thresholds, verbose: bool) -> Result<bool, String> {
    let base_flat = load_flat(base)?;
    let head_flat = load_flat(head)?;
    let rows = diff_metrics(&base_flat, &head_flat, thresholds);

    let base_keys: std::collections::HashSet<&str> =
        base_flat.iter().map(|(k, _)| k.as_str()).collect();
    let head_keys: std::collections::HashSet<&str> =
        head_flat.iter().map(|(k, _)| k.as_str()).collect();
    let removed: Vec<&&str> = base_keys.difference(&head_keys).collect();
    let added: Vec<&&str> = head_keys.difference(&base_keys).collect();

    println!("## bench_diff: `{base}` → `{head}`\n");
    println!("{}", markdown_table(&rows, verbose));
    let regressions: Vec<&DiffRow> = rows.iter().filter(|r| r.regressed).collect();
    println!(
        "{} metrics compared, {} gated, {} regressed, {} added, {} removed",
        rows.len(),
        rows.iter().filter(|r| r.direction != Direction::Info).count(),
        regressions.len(),
        added.len(),
        removed.len()
    );
    if !removed.is_empty() {
        println!("removed (present only in base): {removed:?}");
    }
    for r in &regressions {
        eprintln!(
            "REGRESSION: {} {} → {} ({:+.2}% vs ±{:.0}% gate)",
            r.path,
            fmt_value(r.base),
            fmt_value(r.head),
            r.delta.unwrap_or(0.0) * 100.0,
            r.threshold * 100.0
        );
    }
    Ok(regressions.is_empty())
}

/// The CI smoke: the file against itself must pass, and against a
/// perturbed copy (every gated metric worsened 3× its threshold) must fail.
fn self_check(path: &str, thresholds: &Thresholds) -> Result<(), String> {
    let flat = load_flat(path)?;
    let gated = flat.iter().filter(|(k, _)| classify(k) != Direction::Info).count();
    if gated == 0 {
        return Err(format!("{path} has no gated metrics — the gate would be vacuous"));
    }

    let identity = diff_metrics(&flat, &flat, thresholds);
    if let Some(r) = identity.iter().find(|r| r.regressed) {
        return Err(format!("self-comparison flagged {} — identity must never regress", r.path));
    }

    let worsened = perturb(&flat, thresholds, 3.0);
    let perturbed = diff_metrics(&flat, &worsened, thresholds);
    let caught = perturbed.iter().filter(|r| r.regressed).count();
    if caught == 0 {
        return Err(format!(
            "perturbed copy of {path} raised no regression — the gate cannot fire"
        ));
    }
    println!(
        "self-check ok: {path} — identity clean over {} metrics, perturbation caught {caught}/{gated} gated",
        identity.len()
    );
    Ok(())
}

fn usage() -> String {
    "usage: bench_diff <base.json> <head.json> [--threshold FRAC] [--metric SUBSTR=FRAC]... [--all]\n       bench_diff --self-check <file.json> [--threshold FRAC]".to_string()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files = Vec::new();
    let mut thresholds = Thresholds { default: 0.05, overrides: Vec::new() };
    let mut self_check_mode = false;
    let mut verbose = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--self-check" => self_check_mode = true,
            "--all" => verbose = true,
            "--threshold" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(frac) if frac > 0.0 => thresholds.default = frac,
                _ => {
                    eprintln!("--threshold needs a positive fraction\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--metric" => {
                let Some((substr, frac)) = it
                    .next()
                    .and_then(|v| v.split_once('='))
                    .and_then(|(s, f)| f.parse::<f64>().ok().map(|f| (s.to_string(), f)))
                else {
                    eprintln!("--metric needs SUBSTR=FRAC\n{}", usage());
                    return ExitCode::from(2);
                };
                thresholds.overrides.push((substr, frac));
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other}\n{}", usage());
                return ExitCode::from(2);
            }
            file => files.push(file.to_string()),
        }
    }

    if self_check_mode {
        let [file] = files.as_slice() else {
            eprintln!("--self-check takes exactly one file\n{}", usage());
            return ExitCode::from(2);
        };
        return match self_check(file, &thresholds) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("self-check failed: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let [base, head] = files.as_slice() else {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    };
    match run_diff(base, head, &thresholds, verbose) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("bench_diff: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(pairs: &[(&str, f64)]) -> Vec<(String, f64)> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    fn default_thresholds() -> Thresholds {
        Thresholds { default: 0.05, overrides: Vec::new() }
    }

    #[test]
    fn classification_heuristics() {
        assert_eq!(classify("training[0].steps_per_sec"), Direction::HigherBetter);
        assert_eq!(classify("kernels[2].blocked_gflops"), Direction::HigherBetter);
        assert_eq!(classify("eval.hr10"), Direction::HigherBetter);
        assert_eq!(classify("train.coverage"), Direction::HigherBetter);
        assert_eq!(classify("infer.infer_qps"), Direction::HigherBetter);
        assert_eq!(classify("infer.nograd_speedup"), Direction::HigherBetter);
        assert_eq!(classify("metrics.histograms[0].p99_ns"), Direction::LowerBetter);
        assert_eq!(classify("infer.embed_ns_p50"), Direction::LowerBetter);
        assert_eq!(classify("infer.embed_ns_p99"), Direction::LowerBetter);
        assert_eq!(classify("infer.index_bytes"), Direction::LowerBetter);
        assert_eq!(classify("train.wall_s"), Direction::LowerBetter);
        assert_eq!(classify("phases.embed_s"), Direction::LowerBetter);
        assert_eq!(classify("gauges[0].train_peak_bytes"), Direction::LowerBetter);
        assert_eq!(classify("host_cores"), Direction::Info);
        assert_eq!(classify("dim"), Direction::Info);
    }

    #[test]
    fn serve_section_classification() {
        // The serving block of BENCH_throughput.json gates in the intended
        // directions: throughputs up, latencies and skew down, shape info.
        assert_eq!(classify("serve.insert_qps"), Direction::HigherBetter);
        assert_eq!(classify("serve.batch_qps"), Direction::HigherBetter);
        assert_eq!(classify("serve.query_p50_ns"), Direction::LowerBetter);
        assert_eq!(classify("serve.query_p99_ns"), Direction::LowerBetter);
        assert_eq!(classify("serve.shard_imbalance"), Direction::LowerBetter);
        assert_eq!(classify("serve.shards"), Direction::Info);
        assert_eq!(classify("serve.corpus"), Direction::Info);
        // Gauges exported through the metrics snapshot classify the same way.
        assert_eq!(classify("metrics.gauges[0].shard_imbalance"), Direction::LowerBetter);
        assert_eq!(classify("metrics.gauges[1].serve_batch_size"), Direction::Info);
    }

    #[test]
    fn stream_section_classification() {
        // The streaming block: append throughput up, append latency down,
        // shape/workload leaves informational. `reindex_ratio` in
        // particular must never gate — it tracks how the workload's
        // embedding drift interacts with `reembed_min_delta`, and either
        // direction can be the healthy one.
        assert_eq!(classify("stream.appends_per_sec"), Direction::HigherBetter);
        assert_eq!(classify("stream.append_ns_p50"), Direction::LowerBetter);
        assert_eq!(classify("stream.append_ns_p99"), Direction::LowerBetter);
        assert_eq!(classify("stream.reindex_ratio"), Direction::Info);
        assert_eq!(classify("stream.streams"), Direction::Info);
        assert_eq!(classify("stream.appends"), Direction::Info);
        // The engine counters exported through the metrics snapshot stay
        // informational too (they scale with the workload, not the code).
        assert_eq!(classify("metrics.counters[0].stream_appends_total"), Direction::Info);
        assert_eq!(classify("metrics.counters[1].stream_reindex_total"), Direction::Info);
        // But the append-latency histogram percentiles gate as latencies.
        assert_eq!(classify("metrics.histograms[0].append_ns_p99"), Direction::LowerBetter);
    }

    #[test]
    fn trace_section_classification() {
        // The tracing block: both qps passes gate upward, the measured
        // overhead gates downward, and the descriptive leaves stay
        // informational.
        assert_eq!(classify("trace.trace_off_qps"), Direction::HigherBetter);
        assert_eq!(classify("trace.trace_on_qps"), Direction::HigherBetter);
        assert_eq!(classify("trace.overhead_pct"), Direction::LowerBetter);
        assert_eq!(classify("trace.traced_queries"), Direction::Info);
        assert_eq!(classify("trace.spans_per_query"), Direction::Info);
        assert_eq!(classify("trace.flight_captured"), Direction::Info);
    }

    #[test]
    fn queue_metrics_classification() {
        // Queue depth is workload shape (how bursty the callers were),
        // never a gate; queue-wait percentiles are real latencies.
        assert_eq!(classify("metrics.gauges[0].serve_queue_depth"), Direction::Info);
        assert_eq!(classify("metrics.histograms[0].serve_queue_wait_ns_p99"), Direction::LowerBetter);
        assert_eq!(classify("metrics.histograms[0].serve_queue_wait_ns_p50"), Direction::LowerBetter);
    }

    #[test]
    fn exemplar_fields_never_gate() {
        // One arbitrary traced observation + its trace id ride along with
        // every histogram snapshot; comparing them across runs would gate
        // pure noise.
        assert_eq!(classify("metrics.histograms[0].exemplar_ns"), Direction::Info);
        assert_eq!(classify("metrics.histograms[0].exemplar_trace_id"), Direction::Info);
    }

    #[test]
    fn stream_metrics_gate_in_their_classified_directions() {
        let thresholds = default_thresholds();
        // A 20% append-throughput drop and a 20% p99 growth both fire…
        let base = flat(&[
            ("stream.appends_per_sec", 1000.0),
            ("stream.append_ns_p99", 50_000.0),
            ("stream.reindex_ratio", 0.8),
        ]);
        let head = flat(&[
            ("stream.appends_per_sec", 800.0),
            ("stream.append_ns_p99", 60_000.0),
            ("stream.reindex_ratio", 0.2),
        ]);
        let rows = diff_metrics(&base, &head, &thresholds);
        assert!(rows[0].regressed, "append throughput drop must gate");
        assert!(rows[1].regressed, "append p99 growth must gate");
        // …while even a large reindex-ratio swing never does.
        assert!(!rows[2].regressed, "reindex_ratio is informational");
    }

    #[test]
    fn store_section_classification() {
        // The data-plane block: bandwidth up, sizes/latencies/walls down.
        // `_mb_s` must win over the `_s` duration suffix — a faster build
        // is an improvement, not a latency regression.
        assert_eq!(classify("store.build_mb_s"), Direction::HigherBetter);
        assert_eq!(classify("store.scan_mb_s"), Direction::HigherBetter);
        assert_eq!(classify("store.file_bytes"), Direction::LowerBetter);
        assert_eq!(classify("store.gt_blocked_peak_bytes"), Direction::LowerBetter);
        assert_eq!(classify("store.mmap_open_ns"), Direction::LowerBetter);
        assert_eq!(classify("store.gt_blocked_wall_s"), Direction::LowerBetter);
        assert_eq!(classify("store.eval_qps"), Direction::HigherBetter);
        assert_eq!(classify("store.hr10"), Direction::HigherBetter);
        assert_eq!(classify("store.corpus_n"), Direction::Info);
        assert_eq!(classify("store.tile"), Direction::Info);
    }

    #[test]
    fn bandwidth_regressions_gate_in_the_higher_better_direction() {
        // A drop in MB/s must fire the gate; under the (buggy) `_s` reading
        // a drop would look like an improvement and pass silently.
        let base = flat(&[("store.build_mb_s", 100.0)]);
        let head = flat(&[("store.build_mb_s", 80.0)]);
        let rows = diff_metrics(&base, &head, &default_thresholds());
        assert!(rows.iter().any(|r| r.regressed), "20% bandwidth loss must gate");
        // And a gain must NOT fire.
        let head = flat(&[("store.build_mb_s", 130.0)]);
        let rows = diff_metrics(&base, &head, &default_thresholds());
        assert!(rows.iter().all(|r| !r.regressed), "bandwidth gain fired the gate");
        // Byte-size leaves gate lower-better: growth fires.
        let base = flat(&[("store.file_bytes", 1000.0)]);
        let head = flat(&[("store.file_bytes", 1200.0)]);
        let rows = diff_metrics(&base, &head, &default_thresholds());
        assert!(rows.iter().any(|r| r.regressed), "file growth must gate");
    }

    #[test]
    fn five_percent_regression_fires_and_noise_does_not() {
        let base = flat(&[("rank_latency_ns", 100.0), ("steps_per_sec", 10.0)]);
        // +4% latency, -4% throughput: inside the ±5% gate.
        let noisy = flat(&[("rank_latency_ns", 104.0), ("steps_per_sec", 9.6)]);
        let rows = diff_metrics(&base, &noisy, &default_thresholds());
        assert!(rows.iter().all(|r| !r.regressed), "noise within threshold must pass");

        // +6% latency: beyond the gate.
        let slow = flat(&[("rank_latency_ns", 106.0), ("steps_per_sec", 10.0)]);
        let rows = diff_metrics(&base, &slow, &default_thresholds());
        assert!(rows.iter().any(|r| r.regressed), ">=5% latency regression must fire");

        // -6% throughput: beyond the gate in the other direction.
        let slower = flat(&[("rank_latency_ns", 100.0), ("steps_per_sec", 9.4)]);
        let rows = diff_metrics(&base, &slower, &default_thresholds());
        assert!(rows.iter().any(|r| r.regressed), ">=5% throughput drop must fire");

        // Improvements never fire.
        let faster = flat(&[("rank_latency_ns", 50.0), ("steps_per_sec", 20.0)]);
        let rows = diff_metrics(&base, &faster, &default_thresholds());
        assert!(rows.iter().all(|r| !r.regressed), "improvements must never regress");
    }

    #[test]
    fn per_metric_override_wins_over_default() {
        let thresholds = Thresholds {
            default: 0.05,
            overrides: vec![("rank_latency".to_string(), 0.50)],
        };
        let base = flat(&[("rank_latency_ns", 100.0)]);
        let head = flat(&[("rank_latency_ns", 130.0)]);
        let rows = diff_metrics(&base, &head, &thresholds);
        assert!(!rows[0].regressed, "+30% must pass under a 50% override");
        let head = flat(&[("rank_latency_ns", 160.0)]);
        let rows = diff_metrics(&base, &head, &thresholds);
        assert!(rows[0].regressed, "+60% must fail even under a 50% override");
    }

    #[test]
    fn info_metrics_and_zero_bases_never_gate() {
        let base = flat(&[("host_cores", 1.0), ("train.wall_s", 0.0)]);
        let head = flat(&[("host_cores", 64.0), ("train.wall_s", 5.0)]);
        let rows = diff_metrics(&base, &head, &default_thresholds());
        assert!(rows.iter().all(|r| !r.regressed));
        assert_eq!(rows[1].delta, None, "zero base has no relative delta");
    }

    #[test]
    fn flatten_walks_nested_maps_and_seqs() {
        let json = r#"{"a": {"b_ms": 3}, "rows": [{"x_ns": 1.5}, {"x_ns": 2.5}], "s": "skip", "n": null}"#;
        let value = serde_json::from_str(json).unwrap();
        let mut out = Vec::new();
        flatten(&value, "", &mut out);
        assert_eq!(
            out,
            flat(&[("a.b_ms", 3.0), ("rows[0].x_ns", 1.5), ("rows[1].x_ns", 2.5)])
        );
    }

    #[test]
    fn perturbation_always_caught_by_own_gate() {
        let thresholds = default_thresholds();
        let base = flat(&[
            ("train.wall_s", 2.5),
            ("training[0].steps_per_sec", 12.0),
            ("metrics.histograms[0].p95_ns", 40_000.0),
            ("host_cores", 4.0),
        ]);
        let worsened = perturb(&base, &thresholds, 3.0);
        let rows = diff_metrics(&base, &worsened, &thresholds);
        let gated = rows.iter().filter(|r| r.direction != Direction::Info).count();
        let caught = rows.iter().filter(|r| r.regressed).count();
        assert_eq!(caught, gated, "every gated metric worsened 3x threshold must fire");
        assert!(rows.iter().filter(|r| r.direction == Direction::Info).all(|r| !r.regressed));
    }

    #[test]
    fn markdown_table_shape() {
        let base = flat(&[("a_ns", 100.0), ("b_ns", 100.0)]);
        let head = flat(&[("a_ns", 120.0), ("b_ns", 100.0)]);
        let rows = diff_metrics(&base, &head, &default_thresholds());
        let md = markdown_table(&rows, false);
        assert!(md.starts_with("| metric | base | head |"));
        assert!(md.contains("| a_ns | 100 | 120 | +20.00% | ≤ +5% | **REGRESSED** |"));
        assert!(!md.contains("| b_ns |"), "unchanged rows hidden without --all");
        let md_all = markdown_table(&rows, true);
        assert!(md_all.contains("| b_ns |"), "--all shows unchanged rows");
    }
}
