//! Figure 3 — loss-function ablation: TMN trained with MSE vs Q-error
//! under Fréchet, DTW, Hausdorff and LCSS on the Porto-like dataset.
//!
//! Usage: `cargo run -p tmn-bench --release --bin fig3 [--quick|--full]`

use tmn::prelude::*;
use tmn_bench::{write_json, Ctx, RunResult, RunSpec, Scale, Table};

fn main() {
    let scale = Scale::from_args();
    let mut ctx = Ctx::new();
    let mut results: Vec<RunResult> = Vec::new();

    eprintln!("Figure 3 reproduction — scale {}", scale.name());
    let mut table = Table::new(&["Metric", "Loss", "HR-10", "HR-50", "R10@50"]);
    for metric in [Metric::Frechet, Metric::Dtw, Metric::Hausdorff, Metric::Lcss] {
        for loss in [LossKind::Mse, LossKind::QError] {
            let mut spec = RunSpec::standard(DatasetKind::PortoLike, metric, ModelKind::Tmn, scale);
            spec.train.loss = loss;
            let r = ctx.run(&spec);
            let loss_name = match loss {
                LossKind::Mse => "MSE",
                LossKind::QError => "Q-error",
            };
            eprintln!("  {metric} / {loss_name}: HR-10 {:.4}", r.eval.hr10);
            table.row(&[
                metric.name().into(),
                loss_name.into(),
                format!("{:.4}", r.eval.hr10),
                format!("{:.4}", r.eval.hr50),
                format!("{:.4}", r.eval.r10_50),
            ]);
            results.push(r);
        }
    }
    println!();
    table.print();
    write_json("fig3", &results).expect("write results");
}
