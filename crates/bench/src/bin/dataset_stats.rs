//! Print summary statistics of the synthetic datasets — the evidence for
//! DESIGN.md's substitution argument (length distribution, spatial extent,
//! smoothness contrast between free movement and road-constrained trips).
//!
//! Usage: `cargo run -p tmn-bench --release --bin dataset_stats [--quick|--full]`

use tmn::data::{dataset_stats, length_histogram};
use tmn::prelude::*;
use tmn_bench::{write_json, Scale, Table};

fn main() {
    let scale = Scale::from_args();
    let mut out = Vec::new();
    let mut table = Table::new(&[
        "Dataset", "Count", "Len min/p50/max", "Step mean", "Turn mean (rad)", "BBox",
    ]);
    for kind in [DatasetKind::GeolifeLike, DatasetKind::PortoLike] {
        let ds = Dataset::generate(&DatasetConfig::new(kind, scale.dataset_size(), 42));
        let all: Vec<Trajectory> = ds.train.iter().chain(&ds.test).cloned().collect();
        let s = dataset_stats(&all);
        let hist = length_histogram(&all, 8, s.len_max);
        println!("{} length histogram (8 bins to {}): {hist:?}", kind.name(), s.len_max);
        table.row(&[
            kind.name().into(),
            s.count.to_string(),
            format!("{}/{}/{}", s.len_min, s.len_p50, s.len_max),
            format!("{:.5}", s.step_mean),
            format!("{:.3}", s.turn_mean),
            format!(
                "({:.2},{:.2})..({:.2},{:.2})",
                s.bbox.0 .0, s.bbox.0 .1, s.bbox.1 .0, s.bbox.1 .1
            ),
        ]);
        out.push((kind.name().to_string(), s));
    }
    println!();
    table.print();
    write_json("dataset_stats", &out).expect("write results");
}
