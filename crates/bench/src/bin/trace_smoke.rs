//! CI smoke for request tracing: run queries and stream appends through a
//! live serve engine with the flight recorder in capture-all mode, assert
//! every request yields a complete, well-formed span tree (queue wait →
//! shared embed → per-shard knn/rerank → merge), validate the Chrome
//! trace-event export as JSON, and check exemplar linkage — each serving
//! histogram names a trace the flight recorder actually holds.
//!
//! Runs in a couple of seconds; wired into `scripts/ci.sh` after
//! `stream_smoke`.

use tmn_core::{ModelConfig, ModelKind};
use tmn_obs::{metrics, trace, TraceConfig};
use tmn_serve::{ServeConfig, ServeEngine, ShardSetConfig};
use tmn_traj::{Point, Trajectory};

fn traj(seed: u64, len: usize) -> Trajectory {
    let pts = (0..len)
        .map(|i| {
            let h = tmn_index::splitmix64(seed * 131 + i as u64);
            Point::new((h % 1000) as f64 / 1000.0, ((h >> 10) % 1000) as f64 / 1000.0)
        })
        .collect();
    Trajectory::new(pts)
}

fn main() {
    metrics::set_enabled(true);
    metrics::reset();
    // Capture-all: no slow threshold, keep every request, flight ring big
    // enough that nothing recorded below is evicted.
    trace::configure(TraceConfig {
        span_ring: 8192,
        flight: 256,
        slow_threshold_ns: 0,
        sample_every: 1,
    });
    trace::reset();
    trace::set_enabled(true);

    let shards = 2usize;
    let engine = ServeEngine::start(
        ModelKind::TmnNm,
        &ModelConfig { dim: 16, seed: 9 },
        ServeConfig {
            shard: ShardSetConfig { shards, shortlist: 48, ..Default::default() },
            max_batch: 16,
            ..Default::default()
        },
    )
    .expect("start serve engine");
    let h = engine.handle();

    for id in 0..40u64 {
        h.insert(id, traj(id, 8 + (id % 5) as usize)).expect("insert");
    }
    for q in 0..8u64 {
        let top = h.query(traj(100 + q, 10), 5).expect("query");
        assert_eq!(top.len(), 5, "query must return k results");
    }
    let full = traj(7, 12);
    for p in full.points() {
        h.append_point(500, *p).expect("append");
    }

    // Every request must have produced a captured trace.
    let stats = trace::stats();
    assert_eq!(stats.started, stats.finished, "no request may leak an unfinished trace");
    assert_eq!(
        stats.kept_slow + stats.kept_sampled,
        stats.finished,
        "capture-all config must keep every finished request"
    );

    // A query trace carries the full request lifecycle as one tree.
    let traces = trace::recent();
    let q = traces
        .iter()
        .rev()
        .find(|t| t.name == "serve.query")
        .expect("serve.query trace captured");
    assert!(q.is_well_formed(), "query span tree must be well-formed: {q:?}");
    let root = q.root();
    let wait = q.span_named("serve.queue_wait").expect("queue-wait span");
    assert_eq!(wait.parent, root.span, "queue wait hangs off the request root");
    assert!(
        wait.attrs.iter().any(|a| a.key == "batch_id")
            && wait.attrs.iter().any(|a| a.key == "batch_size"),
        "queue-wait span must carry batch id + size: {:?}",
        wait.attrs
    );
    let embed = q.span_named("serve.embed").expect("embed span");
    assert_eq!(embed.parent, root.span);
    let search = q.span_named("serve.search").expect("search span");
    assert_eq!(search.parent, root.span);
    let knn = q.spans_named("shard.knn");
    let rerank = q.spans_named("shard.rerank");
    assert_eq!(knn.len(), shards, "one knn span per shard");
    assert_eq!(rerank.len(), shards, "one rerank span per shard");
    for s in knn.iter().chain(rerank.iter()) {
        assert_eq!(s.parent, search.span, "shard spans nest under the scatter-gather span");
    }
    let merge = q.span_named("serve.merge").expect("merge span");
    assert_eq!(merge.parent, search.span, "merge is grouped under the scatter-gather span");

    // The streaming path records its own stages.
    let appends: Vec<_> = traces.iter().filter(|t| t.name == "serve.append").collect();
    assert_eq!(appends.len(), full.len(), "one trace per append");
    for (i, a) in appends.iter().enumerate() {
        assert!(a.is_well_formed(), "append trace {i} malformed");
        assert!(a.span_named("stream.step").is_some(), "append {i} lacks stream.step");
        if i > 0 {
            assert!(a.span_named("stream.delta").is_some(), "append {i} lacks stream.delta");
        }
        assert!(a.span_named("stream.reindex").is_some(), "append {i} lacks stream.reindex");
    }

    // The text renderer shows the nesting; the JSONL dump round-trips.
    let tree = trace::render_tree(q);
    for needle in ["serve.query", "serve.queue_wait", "serve.embed", "shard.knn", "serve.merge"] {
        assert!(tree.contains(needle), "tree lacks {needle}:\n{tree}");
    }
    let jsonl = trace::dump_jsonl();
    assert_eq!(jsonl.lines().count(), traces.len(), "one JSONL line per trace");
    for line in jsonl.lines() {
        let _: tmn_obs::TraceSnapshot =
            serde_json::from_str(line).expect("every JSONL line parses back");
    }

    // Chrome export: valid JSON with the documented event fields.
    let chrome = trace::to_chrome_trace(&traces);
    let doc: serde::Value = serde_json::from_str(&chrome).expect("chrome export is valid JSON");
    let events = match doc.get_field("traceEvents") {
        Some(serde::Value::Seq(e)) => e,
        other => panic!("traceEvents array missing: {other:?}"),
    };
    let total_spans: usize = traces.iter().map(|t| t.spans.len()).sum();
    assert_eq!(events.len(), total_spans, "one Chrome event per span");
    for ev in events {
        for field in ["name", "cat", "ph", "ts", "dur", "pid", "tid", "args"] {
            assert!(ev.get_field(field).is_some(), "event lacks {field}: {ev:?}");
        }
        let args = ev.get_field("args").expect("args");
        assert!(args.get_field("trace_id").is_some(), "args lack trace_id");
    }

    // Exemplar linkage: each serving histogram names a trace that the
    // flight recorder (capture-all, nothing evicted) actually holds.
    let snap = metrics::snapshot();
    for name in ["query_embed_ns", "query_index_ns", "query_rank_ns", "append_ns"] {
        let hist = snap.histogram(name).unwrap_or_else(|| panic!("{name} histogram missing"));
        let id = hist
            .exemplar_trace_id
            .unwrap_or_else(|| panic!("{name} lacks an exemplar trace id"));
        assert!(
            trace::find(id).is_some(),
            "{name} exemplar names trace {id}, which the flight recorder does not hold"
        );
        assert!(hist.exemplar_ns.unwrap_or(0) > 0, "{name} exemplar value must be observed");
    }

    // Queue accounting flows alongside the traces.
    assert!(snap.gauge(tmn_serve::SERVE_QUEUE_DEPTH).is_some(), "queue depth gauge missing");
    let wait_h = snap.histogram(tmn_serve::SERVE_QUEUE_WAIT_NS).expect("queue wait histogram");
    assert!(wait_h.count >= stats.finished, "every request passes the admission queue");

    engine.shutdown();
    trace::set_enabled(false);
    trace::configure(TraceConfig::default());

    println!(
        "trace smoke OK: {} traces captured ({} spans), query tree complete over {} shards, \
         {} append traces, chrome export + exemplar linkage verified",
        traces.len(),
        total_spans,
        shards,
        appends.len(),
    );
}
