//! Figure 4 — parameter sensitivity of TMN to the hidden dimension `d` and
//! the learning rate `lr` (DTW on the Porto-like dataset).
//!
//! Usage: `cargo run -p tmn-bench --release --bin fig4 [--quick|--full]`

use tmn::prelude::*;
use tmn_bench::{write_json, Ctx, RunResult, RunSpec, Scale, Table};

fn main() {
    let scale = Scale::from_args();
    let mut ctx = Ctx::new();
    let mut results: Vec<(String, String, RunResult)> = Vec::new();

    // Paper sweeps d in 16..256 and lr in 1e-4..1e-2; scaled for CPU.
    let dims: Vec<usize> = match scale {
        Scale::Quick => vec![8, 16, 32],
        Scale::Default => vec![8, 16, 32, 64],
        Scale::Full => vec![16, 32, 64, 128],
    };
    let lrs: Vec<f32> = vec![1e-4, 5e-4, 1e-3, 5e-3, 1e-2];

    eprintln!("Figure 4 reproduction — scale {}", scale.name());
    let mut dim_table = Table::new(&["d", "HR-10", "HR-50", "R10@50"]);
    for d in dims {
        let mut spec = RunSpec::standard(DatasetKind::PortoLike, Metric::Dtw, ModelKind::Tmn, scale);
        spec.dim = d;
        let r = ctx.run(&spec);
        eprintln!("  d={d}: HR-10 {:.4}", r.eval.hr10);
        dim_table.row(&[
            d.to_string(),
            format!("{:.4}", r.eval.hr10),
            format!("{:.4}", r.eval.hr50),
            format!("{:.4}", r.eval.r10_50),
        ]);
        results.push(("dim".into(), d.to_string(), r));
    }
    println!("\nSensitivity to dimension d (DTW, Porto):");
    dim_table.print();

    let mut lr_table = Table::new(&["lr", "HR-10", "HR-50", "R10@50"]);
    for lr in lrs {
        let mut spec = RunSpec::standard(DatasetKind::PortoLike, Metric::Dtw, ModelKind::Tmn, scale);
        spec.train.lr = lr;
        let r = ctx.run(&spec);
        eprintln!("  lr={lr}: HR-10 {:.4}", r.eval.hr10);
        lr_table.row(&[
            format!("{lr:.0e}"),
            format!("{:.4}", r.eval.hr10),
            format!("{:.4}", r.eval.hr50),
            format!("{:.4}", r.eval.r10_50),
        ]);
        results.push(("lr".into(), format!("{lr}"), r));
    }
    println!("\nSensitivity to learning rate (DTW, Porto):");
    lr_table.print();
    write_json("fig4", &results).expect("write results");
}
