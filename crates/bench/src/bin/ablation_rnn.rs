//! Extension ablation (beyond the paper): swap TMN's LSTM backbone (Eq. 12)
//! for a GRU under identical budgets. The paper's Section II-B names GRU as
//! the other gated RNN; this quantifies how much the backbone choice
//! matters relative to the matching mechanism.
//!
//! Usage: `cargo run -p tmn-bench --release --bin ablation_rnn [--quick|--full]`

use std::time::Instant;
use tmn::prelude::*;
use tmn::autograd::nn::RnnKind;
use tmn::core::Tmn;
use tmn_bench::{write_json, Ctx, Scale, Table};

fn main() {
    let scale = Scale::from_args();
    let mut ctx = Ctx::new();
    let ds = ctx.dataset(DatasetKind::PortoLike, scale.dataset_size(), 42);
    let params = MetricParams::default();
    let metric = Metric::Dtw;
    let dmat = ds.train_distance_matrix(metric, &params, 2);
    let test_dmat = ds.test_distance_matrix(metric, &params, 2);
    let queries: Vec<usize> = (0..scale.queries().min(ds.test.len())).collect();
    let truth: Vec<Vec<f64>> = queries.iter().map(|&q| test_dmat.row(q).to_vec()).collect();

    eprintln!("RNN-backbone ablation — scale {}", scale.name());
    let mut table = Table::new(&["Backbone", "Matching", "HR-10", "HR-50", "R10@50", "Train s/epoch"]);
    let mut results = Vec::new();
    for rnn in [RnnKind::Lstm, RnnKind::Gru] {
        for matching in [true, false] {
            let model = Tmn::with_rnn(&ModelConfig { dim: scale.dim(), seed: 42 }, matching, rnn);
            let cfg = TrainConfig { epochs: scale.epochs(), ..Default::default() };
            let mut trainer = Trainer::new(
                &model, &ds.train, &dmat, metric, params, Box::new(RankSampler), cfg, None,
            );
            let t0 = Instant::now();
            let stats = trainer.train();
            let train_s = t0.elapsed().as_secs_f64() / stats.epochs.len().max(1) as f64;
            let pred = predicted_distance_rows(&model, &ds.test, &queries, 64);
            let eval = evaluate(&pred, &truth, &queries);
            eprintln!("  {} matching={}: HR-10 {:.4}", rnn.name(), matching, eval.hr10);
            table.row(&[
                rnn.name().into(),
                if matching { "yes" } else { "no" }.into(),
                format!("{:.4}", eval.hr10),
                format!("{:.4}", eval.hr50),
                format!("{:.4}", eval.r10_50),
                format!("{train_s:.2}"),
            ]);
            results.push((rnn.name().to_string(), matching, eval));
        }
    }
    println!();
    table.print();
    write_json("ablation_rnn", &results).expect("write results");
}
