//! Op-level profiling run: a short TMN train + eval cycle with the
//! `tmn-obs` profiler enabled, reporting where the wall-clock time goes.
//!
//! Usage:
//!   `cargo run -p tmn-bench --release --bin profile [--quick|--full]`
//!   `cargo run -p tmn-bench --release --bin profile -- --check`
//!   `cargo run -p tmn-bench --release --bin profile -- --nodes`
//!
//! The default mode trains for a few epochs (threads=1 so op time and wall
//! time are directly comparable), runs a top-k search, and emits:
//!
//! - `results/PROFILE_ops.json` — per-op `{name, kind, calls, total_ns,
//!   flops, mean_ns, gflops}` records for the training and eval sections,
//!   the training coverage fraction (instrumented ns / wall ns), and the
//!   eval embed/index/rank phase breakdown;
//! - `results/PROFILE_telemetry.jsonl` — the training run's per-batch and
//!   per-epoch telemetry stream;
//! - a human-readable top-K table on stdout.
//!
//! `--check` re-reads both files and validates their schema, that training
//! coverage is ≥95%, and that every forward/backward record's name is
//! registered in `tmn_autograd::INSTRUMENTED_OPS` (CI smoke).
//!
//! `--nodes` builds each recurrent layer once and asserts the fused path
//! stays within its graph-node budget of ≤3 nodes per (step × direction) —
//! the regression gate for the time-major RNN fusion.

use std::time::Instant;
use tmn::prelude::*;
use tmn_bench::{write_json, Scale, Table};
use tmn_eval::{time_search_phases, SearchPhases};
use tmn_obs::{metrics, profiler, BatchTelemetry, EpochTelemetry, MetricsSnapshot, OpRecord, TelemetrySink};

const OPS_PATH: &str = "results/PROFILE_ops.json";
const TELEMETRY_PATH: &str = "results/PROFILE_telemetry.jsonl";
const TOP_K: usize = 12;

#[derive(serde::Serialize, serde::Deserialize)]
struct TrainSection {
    wall_s: f64,
    epochs: usize,
    pairs: usize,
    /// Nanoseconds attributed to instrumented ops/phases (disjoint scopes).
    instrumented_ns: u64,
    /// `instrumented_ns` over training wall time.
    coverage: f64,
    ops: Vec<OpRecord>,
}

#[derive(serde::Serialize, serde::Deserialize)]
struct EvalSection {
    phases: SearchPhases,
    ops: Vec<OpRecord>,
}

#[derive(serde::Serialize, serde::Deserialize)]
struct Report {
    scale: String,
    dim: usize,
    train_trajectories: usize,
    queries: usize,
    telemetry_path: String,
    train: TrainSection,
    eval: EvalSection,
    /// Serving/training metrics registry at end of run: `queries_total`,
    /// `query_*_ns` latency histograms (p50/p90/p95/p99), per-batch
    /// trainer gauges. Same payload `tmn_obs::export::to_prometheus` serves.
    metrics: MetricsSnapshot,
}

fn main() {
    if std::env::args().any(|a| a == "--check") {
        match check() {
            Ok(summary) => println!("profile check OK: {summary}"),
            Err(e) => {
                eprintln!("profile check FAILED: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    if std::env::args().any(|a| a == "--nodes") {
        match check_node_budget() {
            Ok(summary) => println!("node budget OK: {summary}"),
            Err(e) => {
                eprintln!("node budget FAILED: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    run();
}

/// Assert the fused recurrent layers stay within ≤3 graph nodes per
/// (time step × direction). Run by `scripts/ci.sh` so a change that quietly
/// reintroduces per-step op chains (select/matmul/slice/... ≈ 16 nodes/step)
/// fails loudly instead of only showing up as a slow profile.
fn check_node_budget() -> Result<String, String> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tmn_autograd::nn::{BiLstm, Gru, Lstm, ParamSet, Recurrent};
    use tmn_autograd::Tensor;

    const T: usize = 32;
    const BUDGET_PER_STEP_DIR: u64 = 3;
    let x = Tensor::from_vec((0..2 * T * 6).map(|i| (i as f32 * 0.13).sin()).collect(), &[2, T, 6]);

    let mut ps = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(7);
    let layers: Vec<(&str, Box<dyn Recurrent>, u64)> = vec![
        ("lstm", Box::new(Lstm::new(&mut ps, "lstm", 6, 8, &mut rng)), 1),
        ("gru", Box::new(Gru::new(&mut ps, "gru", 6, 8, &mut rng)), 1),
        ("bilstm", Box::new(BiLstm::new(&mut ps, "bi", 6, 8, &mut rng)), 2),
    ];
    let mut parts = Vec::new();
    for (name, layer, dirs) in &layers {
        let before = Tensor::scalar(0.0).id();
        let out = layer.forward_seq(&x);
        let nodes = out.id() - before - 1;
        let budget = BUDGET_PER_STEP_DIR * T as u64 * dirs;
        if nodes > budget {
            return Err(format!(
                "{name}: {nodes} graph nodes for {T} steps x {dirs} direction(s), budget {budget}"
            ));
        }
        parts.push(format!("{name} {nodes}/{budget}"));
    }
    Ok(format!("{} ({T} steps)", parts.join(", ")))
}

fn run() {
    let scale = Scale::from_args();
    let size = scale.dataset_size();
    let dim = scale.dim();
    let epochs = scale.epochs().min(3);
    let queries: Vec<usize> = (0..scale.queries().min(8)).collect();
    eprintln!("profile run — scale {} ({size} trajectories, dim {dim}, {epochs} epochs)", scale.name());

    let ds = Dataset::generate(&DatasetConfig::new(DatasetKind::PortoLike, size, 42));
    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let dmat = ds.train_distance_matrix(Metric::Dtw, &MetricParams::default(), host_cores);

    let mcfg = ModelConfig { dim, seed: 42 };
    let model = ModelKind::Tmn.build(&mcfg);
    // threads=1: all instrumented work happens on this thread, so summed op
    // time is directly comparable to the training wall clock.
    let cfg = TrainConfig { epochs, batch_pairs: 64, threads: 1, ..Default::default() };
    let sink = TelemetrySink::to_file(TELEMETRY_PATH).expect("create telemetry file");
    let mut trainer = Trainer::new(
        model.as_ref(),
        &ds.train,
        &dmat,
        Metric::Dtw,
        MetricParams::default(),
        Box::new(RankSampler),
        cfg,
        None,
    )
    .with_telemetry(sink);

    profiler::set_enabled(true);
    profiler::reset();
    metrics::set_enabled(true);
    metrics::reset();
    let t0 = Instant::now();
    let stats = trainer.train();
    let train_wall = t0.elapsed();
    let train_ops = profiler::snapshot();
    let instrumented_ns = profiler::total_ns();
    let coverage = instrumented_ns as f64 / train_wall.as_nanos().max(1) as f64;

    profiler::reset();
    let (phases, _results) = time_search_phases(model.as_ref(), &ds.train, &queries, 10, 32);
    let eval_ops = profiler::snapshot();
    profiler::set_enabled(false);

    let wall_ns = train_wall.as_nanos() as u64;
    let mut table = Table::new(&["Op", "Kind", "Calls", "Total ms", "% wall", "Mean ns", "GFLOP/s"]);
    // The snapshot is (name, kind)-sorted for stable JSON diffs; the human
    // table wants the expensive rows first.
    let mut by_time: Vec<&OpRecord> = train_ops.iter().collect();
    by_time.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then_with(|| a.name.cmp(&b.name)));
    for r in by_time.iter().take(TOP_K) {
        table.row(&[
            r.name.clone(),
            r.kind.clone(),
            r.calls.to_string(),
            format!("{:.2}", r.total_ns as f64 / 1e6),
            format!("{:.1}%", 100.0 * r.total_ns as f64 / wall_ns.max(1) as f64),
            format!("{:.0}", r.mean_ns),
            if r.flops > 0 { format!("{:.2}", r.gflops) } else { "-".to_string() },
        ]);
    }
    println!("\nTraining: top {TOP_K} ops by total time ({:.2} s wall, {:.1}% instrumented)", train_wall.as_secs_f64(), 100.0 * coverage);
    table.print();
    let (fe, fi, fr) = phases.fractions();
    println!(
        "\nEval search ({} queries): embed {:.1}% | index {:.1}% | rank {:.1}% of {:.3} s",
        phases.queries,
        100.0 * fe,
        100.0 * fi,
        100.0 * fr,
        phases.total_s()
    );
    let metrics_snap = metrics::snapshot();
    for h in &metrics_snap.histograms {
        if h.name.starts_with("query_") {
            println!(
                "{}: n={} p50 {:.1}µs p95 {:.1}µs p99 {:.1}µs max {:.1}µs",
                h.name,
                h.count,
                h.p50_ns as f64 / 1e3,
                h.p95_ns as f64 / 1e3,
                h.p99_ns as f64 / 1e3,
                h.max_ns as f64 / 1e3,
            );
        }
    }

    let report = Report {
        scale: scale.name().to_string(),
        dim,
        train_trajectories: ds.train.len(),
        queries: queries.len(),
        telemetry_path: TELEMETRY_PATH.to_string(),
        train: TrainSection {
            wall_s: train_wall.as_secs_f64(),
            epochs: stats.epochs.len(),
            pairs: stats.epochs.iter().map(|e| e.pairs).sum(),
            instrumented_ns,
            coverage,
            ops: train_ops,
        },
        eval: EvalSection { phases, ops: eval_ops },
        metrics: metrics_snap,
    };
    write_json("PROFILE_ops", &report).expect("write results");
}

/// Validate the emitted artifacts (used by `scripts/ci.sh` as a smoke test).
fn check() -> Result<String, String> {
    let text = std::fs::read_to_string(OPS_PATH).map_err(|e| format!("read {OPS_PATH}: {e}"))?;
    let report: Report =
        serde_json::from_str(&text).map_err(|e| format!("parse {OPS_PATH}: {e}"))?;

    if report.train.ops.is_empty() {
        return Err("no training op records".into());
    }
    for r in report.train.ops.iter().chain(&report.eval.ops) {
        if r.calls == 0 {
            return Err(format!("op {} has zero calls", r.name));
        }
        if !matches!(r.kind.as_str(), "forward" | "backward" | "phase") {
            return Err(format!("op {} has unknown kind {:?}", r.name, r.kind));
        }
        // Every tensor op must be in the autograd FLOP-estimator registry;
        // phases (trainer.*, optim.*, ...) are exempt by kind.
        if r.kind != "phase" && !tmn_autograd::INSTRUMENTED_OPS.contains(&r.name.as_str()) {
            return Err(format!("op {} not registered in INSTRUMENTED_OPS", r.name));
        }
        let expect_mean = if r.calls == 0 { 0.0 } else { r.total_ns as f64 / r.calls as f64 };
        if (r.mean_ns - expect_mean).abs() > 1e-6 * expect_mean.max(1.0) {
            return Err(format!("op {}: mean_ns {} inconsistent with counters", r.name, r.mean_ns));
        }
    }
    for kind in ["forward", "backward"] {
        if !report.train.ops.iter().any(|r| r.kind == kind && r.flops > 0) {
            return Err(format!("no {kind} record with a FLOP estimate"));
        }
    }
    // Fused ops shrank uninstrumented graph bookkeeping to a sliver; hold
    // that line. (>1.0 is possible only through timer jitter; cap loosely.)
    if !(report.train.coverage >= 0.95 && report.train.coverage < 1.5) {
        return Err(format!(
            "training coverage {:.3} below the 0.95 floor",
            report.train.coverage
        ));
    }
    if report.train.wall_s <= 0.0 || report.eval.phases.total_s() <= 0.0 {
        return Err("non-positive wall times".into());
    }

    check_metrics(&report)?;

    let telemetry = std::fs::read_to_string(&report.telemetry_path)
        .map_err(|e| format!("read {}: {e}", report.telemetry_path))?;
    let (mut batches, mut epochs) = (0usize, 0usize);
    for line in telemetry.lines().filter(|l| !l.is_empty()) {
        let v: serde_json::Value =
            serde_json::from_str(line).map_err(|e| format!("bad telemetry line: {e}"))?;
        match v.get_field("record") {
            Some(serde_json::Value::Str(s)) if s == "batch" => {
                serde_json::from_str::<BatchTelemetry>(line)
                    .map_err(|e| format!("bad batch record: {e}"))?;
                batches += 1;
            }
            Some(serde_json::Value::Str(s)) if s == "epoch" => {
                serde_json::from_str::<EpochTelemetry>(line)
                    .map_err(|e| format!("bad epoch record: {e}"))?;
                epochs += 1;
            }
            other => return Err(format!("unknown telemetry discriminator {other:?}")),
        }
    }
    if epochs != report.train.epochs || batches == 0 {
        return Err(format!(
            "telemetry mismatch: {epochs} epoch records (expected {}), {batches} batch records",
            report.train.epochs
        ));
    }
    Ok(format!(
        "{} train ops, coverage {:.1}%, {batches} batch + {epochs} epoch telemetry records, \
         {} metrics histograms",
        report.train.ops.len(),
        100.0 * report.train.coverage,
        report.metrics.histograms.len()
    ))
}

/// Schema + invariant validation of the embedded metrics registry snapshot
/// (typed deserialization already happened; this checks the contents).
fn check_metrics(report: &Report) -> Result<(), String> {
    let m = &report.metrics;
    let queries = report.queries as u64;
    let total = m
        .counter(tmn_eval::QUERIES_TOTAL)
        .ok_or_else(|| format!("metrics: missing {} counter", tmn_eval::QUERIES_TOTAL))?;
    if total < queries {
        return Err(format!("metrics: queries_total {total} below report.queries {queries}"));
    }
    // TMN is pair-dependent: per-query embed + rank histograms, no index.
    for name in [tmn_eval::QUERY_EMBED_NS, tmn_eval::QUERY_RANK_NS] {
        let h = m.histogram(name).ok_or_else(|| format!("metrics: missing {name} histogram"))?;
        if h.count < queries {
            return Err(format!("metrics: {name} count {} below {queries} queries", h.count));
        }
        if !(h.min_ns <= h.p50_ns
            && h.p50_ns <= h.p90_ns
            && h.p90_ns <= h.p95_ns
            && h.p95_ns <= h.p99_ns
            && h.p99_ns <= h.max_ns)
        {
            return Err(format!("metrics: {name} quantiles not monotone"));
        }
        let bucket_total: u64 = h.buckets.iter().map(|b| b.count).sum();
        if bucket_total != h.count {
            return Err(format!(
                "metrics: {name} bucket counts sum to {bucket_total}, expected {}",
                h.count
            ));
        }
        if h.sum_ns < h.max_ns || h.sum_ns > h.count.saturating_mul(h.max_ns) {
            return Err(format!("metrics: {name} sum_ns {} outside [max, count*max]", h.sum_ns));
        }
    }
    let batches = m
        .counter(tmn_core::TRAIN_BATCHES_TOTAL)
        .ok_or_else(|| format!("metrics: missing {} counter", tmn_core::TRAIN_BATCHES_TOTAL))?;
    if batches == 0 {
        return Err("metrics: zero training batches recorded".into());
    }
    let bh = m
        .histogram(tmn_core::TRAIN_BATCH_NS)
        .ok_or_else(|| format!("metrics: missing {} histogram", tmn_core::TRAIN_BATCH_NS))?;
    if bh.count != batches {
        return Err(format!(
            "metrics: {} count {} != {} batch counter {batches}",
            tmn_core::TRAIN_BATCH_NS,
            bh.count,
            tmn_core::TRAIN_BATCHES_TOTAL
        ));
    }
    if m.gauge(tmn_core::TRAIN_BATCH_WALL_MS).is_none() {
        return Err(format!("metrics: missing {} gauge", tmn_core::TRAIN_BATCH_WALL_MS));
    }
    // The Prometheus rendering of the same snapshot must expose the
    // serving histograms (exporter smoke).
    let prom = tmn_obs::export::to_prometheus(m);
    for series in ["tmn_query_embed_ns_bucket{le=\"+Inf\"}", "tmn_queries_total", "tmn_train_batch_ns_count"] {
        if !prom.contains(series) {
            return Err(format!("metrics: prometheus export missing {series}"));
        }
    }
    Ok(())
}
