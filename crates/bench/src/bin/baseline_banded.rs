//! Extension experiment: the *non-learning* approximation route the paper's
//! introduction contrasts with (category (1): approximation algorithms for a
//! single metric). Sakoe–Chiba banded DTW trades accuracy for speed; this
//! binary measures its top-k search quality and runtime against exact DTW
//! and against trained TMN — reproducing the paper's argument that learned
//! embeddings offer a better accuracy/speed trade-off.
//!
//! Usage: `cargo run -p tmn-bench --release --bin baseline_banded [--quick|--full]`

use std::time::Instant;
use tmn::prelude::*;
use tmn::traj::metrics::dtw_banded;
use tmn_bench::{write_json, Ctx, RunSpec, Scale, Table};

fn main() {
    let scale = Scale::from_args();
    let mut ctx = Ctx::new();
    let ds = ctx.dataset(DatasetKind::PortoLike, scale.dataset_size(), 42);
    let params = MetricParams::default();
    let test_dmat = ds.test_distance_matrix(Metric::Dtw, &params, 2);
    let queries: Vec<usize> = (0..scale.queries().min(ds.test.len())).collect();
    let truth: Vec<Vec<f64>> = queries.iter().map(|&q| test_dmat.row(q).to_vec()).collect();

    eprintln!("Banded-DTW baseline vs learned — scale {}", scale.name());
    let mut table = Table::new(&["Method", "HR-10", "HR-50", "R10@50", "Query time (s)"]);
    let mut results = Vec::new();

    for band in [1usize, 2, 4, 8] {
        let t0 = Instant::now();
        let pred: Vec<Vec<f64>> = queries
            .iter()
            .map(|&q| ds.test.iter().map(|t| dtw_banded(&ds.test[q], t, band)).collect())
            .collect();
        let secs = t0.elapsed().as_secs_f64();
        let eval = evaluate(&pred, &truth, &queries);
        eprintln!("  band {band}: HR-10 {:.4} in {secs:.2}s", eval.hr10);
        table.row(&[
            format!("banded DTW (w={band})"),
            format!("{:.4}", eval.hr10),
            format!("{:.4}", eval.hr50),
            format!("{:.4}", eval.r10_50),
            format!("{secs:.3}"),
        ]);
        results.push((format!("band{band}"), eval, secs));
    }

    // Exact DTW for reference (HR is 1 by definition; only time matters).
    let t0 = Instant::now();
    for &q in &queries {
        for t in ds.test.iter() {
            std::hint::black_box(Metric::Dtw.distance(&ds.test[q], t, &params));
        }
    }
    let exact_secs = t0.elapsed().as_secs_f64();
    table.row(&[
        "exact DTW".into(),
        "1.0000".into(),
        "1.0000".into(),
        "1.0000".into(),
        format!("{exact_secs:.3}"),
    ]);

    // Trained TMN for the learned side of the trade-off.
    let spec = RunSpec::standard(DatasetKind::PortoLike, Metric::Dtw, ModelKind::Tmn, scale);
    let r = ctx.run(&spec);
    table.row(&[
        "TMN (learned)".into(),
        format!("{:.4}", r.eval.hr10),
        format!("{:.4}", r.eval.hr50),
        format!("{:.4}", r.eval.r10_50),
        format!("{:.3}", r.eval_seconds),
    ]);
    results.push(("tmn".into(), r.eval, r.eval_seconds));

    println!();
    table.print();
    write_json("baseline_banded", &results).expect("write results");
}
