//! Figure 5 — sensitivity of TMN to the sampling number `sn` (DTW, Porto)
//! and the effect of the sub-trajectory loss (LCSS and Hausdorff, Porto).
//!
//! Usage: `cargo run -p tmn-bench --release --bin fig5 [--quick|--full]`

use tmn::prelude::*;
use tmn_bench::{write_json, Ctx, RunResult, RunSpec, Scale, Table};

fn main() {
    let scale = Scale::from_args();
    let mut ctx = Ctx::new();
    let mut results: Vec<(String, String, RunResult)> = Vec::new();

    // Paper sweeps sn from 10 to 50 (half near, half far).
    let sns: Vec<usize> = match scale {
        Scale::Quick => vec![10, 20, 30],
        _ => vec![10, 20, 30, 40, 50],
    };

    eprintln!("Figure 5 reproduction — scale {}", scale.name());
    let mut sn_table = Table::new(&["sn", "HR-10", "HR-50", "R10@50"]);
    for sn in sns {
        let mut spec = RunSpec::standard(DatasetKind::PortoLike, Metric::Dtw, ModelKind::Tmn, scale);
        spec.train.sampling_number = sn;
        let r = ctx.run(&spec);
        eprintln!("  sn={sn}: HR-10 {:.4}", r.eval.hr10);
        sn_table.row(&[
            sn.to_string(),
            format!("{:.4}", r.eval.hr10),
            format!("{:.4}", r.eval.hr50),
            format!("{:.4}", r.eval.r10_50),
        ]);
        results.push(("sn".into(), sn.to_string(), r));
    }
    println!("\nSensitivity to sampling number sn (DTW, Porto):");
    sn_table.print();

    // Sub-trajectory-loss ablation under LCSS and Hausdorff.
    let mut sub_table = Table::new(&["Metric", "Variant", "HR-10", "HR-50", "R10@50"]);
    for metric in [Metric::Lcss, Metric::Hausdorff] {
        for with_sub in [true, false] {
            let mut spec = RunSpec::standard(DatasetKind::PortoLike, metric, ModelKind::Tmn, scale);
            spec.train.use_sub_loss = with_sub;
            let r = ctx.run(&spec);
            let variant = if with_sub { "TMN" } else { "noSub" };
            eprintln!("  {metric} / {variant}: HR-10 {:.4}", r.eval.hr10);
            sub_table.row(&[
                metric.name().into(),
                variant.into(),
                format!("{:.4}", r.eval.hr10),
                format!("{:.4}", r.eval.hr50),
                format!("{:.4}", r.eval.r10_50),
            ]);
            results.push(("sub".into(), format!("{metric}-{variant}"), r));
        }
    }
    println!("\nSub-trajectory-loss ablation (Porto):");
    sub_table.print();
    write_json("fig5", &results).expect("write results");
}
