//! CI smoke for the streaming path: replay a trajectory point-by-point
//! through `append_point`, assert the incrementally maintained index
//! embedding is *bitwise* equal to a whole-trajectory insert, exercise the
//! sliding-window query and the `reembed_min_delta` churn filter, and
//! check the stream counters flow through the exporters.
//!
//! Runs in a couple of seconds; wired into `scripts/ci.sh` after
//! `store_smoke`.

use tmn_core::{ModelConfig, ModelKind};
use tmn_obs::{export, metrics};
use tmn_serve::{ServeConfig, ServeEngine, ServeError, ShardSetConfig};
use tmn_traj::{Point, Trajectory};

fn traj(seed: u64, len: usize) -> Trajectory {
    let pts = (0..len)
        .map(|i| {
            let h = tmn_index::splitmix64(seed * 131 + i as u64);
            Point::new((h % 1000) as f64 / 1000.0, ((h >> 10) % 1000) as f64 / 1000.0)
        })
        .collect();
    Trajectory::new(pts)
}

fn main() {
    metrics::set_enabled(true);
    metrics::reset();

    let cfg = || ServeConfig {
        shard: ShardSetConfig { shards: 2, shortlist: 48, ..Default::default() },
        max_batch: 16,
        ..Default::default() // reembed_min_delta = 0.0: every append re-indexes
    };
    let engine = ServeEngine::start(ModelKind::TmnNm, &ModelConfig { dim: 16, seed: 9 }, cfg())
        .expect("start serve engine");
    let h = engine.handle();

    // Replay: stream one trajectory point-by-point into id 1, and insert
    // the finished trajectory whole as id 100. The streamed index entry
    // must track every prefix and end bitwise-equal to the whole insert.
    let full = traj(7, 24);
    for (i, p) in full.points().iter().enumerate() {
        let out = h.append_point(1, *p).expect("append");
        assert_eq!(out.len, i + 1, "stream length drifted");
        assert!(out.reindexed, "reembed_min_delta=0 must re-index every append");
        if i == 0 {
            assert!(out.delta.is_infinite(), "first append has no previous embedding");
        } else {
            assert!(out.delta.is_finite() && out.delta >= 0.0, "bad delta {}", out.delta);
        }
    }
    h.insert(100, full.clone()).expect("whole insert");
    let streamed = engine.shards().get_vec(1).expect("streamed vec");
    let whole = engine.shards().get_vec(100).expect("whole vec");
    assert_eq!(
        streamed.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        whole.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "incremental index embedding diverged from whole-trajectory insert"
    );

    // Resume: a trajectory inserted whole keeps accepting appends — the
    // engine replays the stored points into a fresh stream once, then
    // steps incrementally. Growing a 10-point insert by the remaining 14
    // points must land on the same bits again.
    h.insert(200, full.prefix(10)).expect("prefix insert");
    for p in &full.points()[10..] {
        h.append_point(200, *p).expect("resumed append");
    }
    let resumed = engine.shards().get_vec(200).expect("resumed vec");
    assert_eq!(
        resumed.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        whole.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "append after whole insert diverged from the grown trajectory"
    );

    // Query: the live stream is its own nearest neighbour, and the
    // sliding-window query equals an ad-hoc query over the same suffix.
    for id in 0..32u64 {
        h.insert(1000 + id, traj(50 + id, 12)).expect("corpus insert");
    }
    let top = h.query(full.clone(), 3).expect("query");
    assert!(top.iter().any(|&(id, d)| (id == 1 || id == 100 || id == 200) && d <= 1e-6),
        "live stream not its own nearest neighbour: {top:?}");
    let windowed = h.query_window(1, 8, 5).expect("window query");
    let adhoc = h.query(full.last_window(8), 5).expect("ad-hoc window query");
    assert_eq!(windowed, adhoc, "window query diverged from ad-hoc suffix query");
    assert_eq!(
        h.query_window(777, 8, 5),
        Err(ServeError::UnknownId(777)),
        "window query on unknown id must fail"
    );

    // Flag: the reindex counters must account for every append (38 total:
    // 24 streamed + 14 resumed), all re-indexed under delta = 0.
    let snap = metrics::snapshot();
    assert_eq!(snap.counter(tmn_serve::STREAM_APPENDS_TOTAL), Some(38), "append counter");
    assert_eq!(snap.counter(tmn_serve::STREAM_REINDEX_TOTAL), Some(38), "reindex counter");
    let hist = snap.histogram(tmn_serve::APPEND_NS).expect("append_ns histogram");
    assert_eq!(hist.count, 38, "append_ns histogram count");
    let prom = export::to_prometheus(&snap);
    for needle in ["tmn_stream_appends_total 38", "tmn_stream_reindex_total 38", "tmn_append_ns"] {
        assert!(prom.contains(needle), "exposition lacks {needle}:\n{prom}");
    }
    engine.shutdown();

    // Churn filter: under an unreachable reembed_min_delta only the first
    // append (infinite delta) re-indexes; the index then keeps serving the
    // first embedding while the stream keeps advancing.
    let engine = ServeEngine::start(
        ModelKind::TmnNm,
        &ModelConfig { dim: 16, seed: 9 },
        ServeConfig { reembed_min_delta: f64::MAX, ..cfg() },
    )
    .expect("start filtered engine");
    let h = engine.handle();
    let first = h.append_point(5, full[0]).expect("first append");
    assert!(first.reindexed, "infinite first delta must re-index");
    let frozen = engine.shards().get_vec(5).expect("frozen vec");
    for p in &full.points()[1..] {
        let out = h.append_point(5, *p).expect("filtered append");
        assert!(!out.reindexed, "delta {} must not clear f64::MAX", out.delta);
    }
    assert_eq!(engine.shards().get_vec(5), Some(frozen), "skipped append churned the index");
    let snap = metrics::snapshot();
    assert_eq!(snap.counter(tmn_serve::STREAM_REINDEX_TOTAL), Some(39), "filtered reindex count");
    engine.shutdown();

    println!(
        "stream smoke OK: 24-point replay bitwise-matches whole insert, resume after insert, \
         window query, reembed_min_delta filter, counters at {}/{} appends/reindexes",
        snap.counter(tmn_serve::STREAM_APPENDS_TOTAL).unwrap_or(0),
        39,
    );
}
