//! CI smoke for the scale-out data plane: write a corpus + embedding store
//! to disk, reopen them as mmap views, and exercise every load-bearing
//! guarantee — CRC round-trip, corruption rejection, blocked-vs-dense
//! ground-truth bitwise equality, shard-count-independent evaluation, and
//! warm-started serving — failing loudly on any divergence.
//!
//! Runs in a couple of seconds; wired into `scripts/ci.sh` after
//! `serve_smoke`.

use tmn_core::{ModelConfig, ModelKind};
use tmn_eval::{encode_all, evaluate_sharded, EmbeddingStore};
use tmn_serve::{ServeConfig, ServeEngine, ShardSetConfig};
use tmn_store::{write_corpus, BlockedDistanceMatrix, CorpusFile, EmbeddingsFile};
use tmn_traj::metrics::{Metric, MetricParams};
use tmn_traj::{DistanceMatrix, GroundTruth, Point, Trajectory};

fn traj(seed: u64, len: usize) -> Trajectory {
    let pts = (0..len)
        .map(|i| {
            let h = tmn_index::splitmix64(seed * 131 + i as u64);
            Point::new((h % 1000) as f64 / 1000.0, ((h >> 10) % 1000) as f64 / 1000.0)
        })
        .collect();
    Trajectory::new(pts)
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tmn-store-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn main() {
    let n = 80usize;
    let trajs: Vec<Trajectory> = (0..n).map(|i| traj(i as u64, 8 + (i % 7))).collect();

    // -- Corpus: write -> mmap reopen -> byte-exact round-trip ------------
    let corpus_path = tmp("corpus.tmns");
    write_corpus(&corpus_path, &trajs).expect("write corpus");
    let corpus = CorpusFile::open(&corpus_path).expect("open corpus");
    corpus.verify().expect("corpus CRC verify");
    assert_eq!(corpus.len(), n);
    let view = corpus.view();
    for (i, t) in trajs.iter().enumerate() {
        let got = view.get(i);
        assert_eq!(&got, t, "corpus round-trip diverged at row {i}");
    }

    // -- Corruption: any flipped byte must be rejected, never mis-served --
    let clean = std::fs::read(&corpus_path).expect("read corpus bytes");
    for &pos in &[4usize, 40, clean.len() / 2, clean.len() - 1] {
        let mut bad = clean.clone();
        bad[pos] ^= 0x40;
        let bad_path = tmp("corrupt.tmns");
        std::fs::write(&bad_path, &bad).unwrap();
        let rejected = match CorpusFile::open(&bad_path) {
            Err(_) => true,
            Ok(f) => f.verify().is_err(),
        };
        assert!(rejected, "flipped byte at {pos} was not rejected");
    }
    // Truncation mid-payload must also fail closed.
    let cut_path = tmp("truncated.tmns");
    std::fs::write(&cut_path, &clean[..clean.len() / 2]).unwrap();
    assert!(
        CorpusFile::open(&cut_path).map(|f| f.verify().is_err()).unwrap_or(true),
        "truncated corpus was not rejected"
    );

    // -- Ground truth: blocked out-of-core == dense in-RAM, bit for bit ---
    let params = MetricParams::default();
    let gt_path = tmp("gt.tmns");
    let blocked =
        BlockedDistanceMatrix::compute(&gt_path, &trajs, Metric::Hausdorff, &params, 2, 16)
            .expect("blocked ground truth");
    let dense = DistanceMatrix::compute(&trajs, Metric::Hausdorff, &params, 2);
    for i in 0..n {
        for j in 0..n {
            assert_eq!(
                blocked.get(i, j).to_bits(),
                dense.get(i, j).to_bits(),
                "blocked/dense ground truth diverged at ({i},{j})"
            );
        }
    }

    // -- Embeddings: save -> mmap reopen -> zero-copy rows match ----------
    let mcfg = ModelConfig { dim: 16, seed: 7 };
    let model = ModelKind::TmnNm.build(&mcfg);
    let embeds = encode_all(model.as_ref(), &trajs, 1);
    let emb_path = tmp("emb.tmns");
    EmbeddingStore::from_vectors(&embeds).save(&emb_path).expect("save embeddings");
    let emb_file = EmbeddingsFile::open(&emb_path).expect("open embeddings");
    emb_file.verify().expect("embeddings CRC verify");
    let store = EmbeddingStore::open_mmap(&emb_path).expect("mmap embeddings");
    assert!(store.is_mapped());
    for (i, e) in embeds.iter().enumerate() {
        assert_eq!(store.get(i), &e[..], "embedding row {i} diverged through mmap");
    }

    // -- Evaluation: bitwise identical across shard counts, owned vs mmap -
    let queries: Vec<usize> = (0..n).step_by(3).collect();
    let truth: &dyn GroundTruth = &blocked;
    let e1 = evaluate_sharded(&store, truth, &queries, 1);
    let e4 = evaluate_sharded(&store, truth, &queries, 4);
    let owned = evaluate_sharded(&EmbeddingStore::from_vectors(&embeds), &dense, &queries, 2);
    for (a, b) in [(&e1, &e4), (&e1, &owned)] {
        assert_eq!(a.hr10.to_bits(), b.hr10.to_bits(), "HR-10 diverged: {a:?} vs {b:?}");
        assert_eq!(a.hr50.to_bits(), b.hr50.to_bits(), "HR-50 diverged");
        assert_eq!(a.r10_50.to_bits(), b.r10_50.to_bits(), "R10@50 diverged");
    }

    // -- Warm start: serving straight off the two stores ------------------
    let cfg = ServeConfig {
        shard: ShardSetConfig { shards: 2, shortlist: 32, ..Default::default() },
        max_batch: 8,
        ..Default::default()
    };
    let engine = ServeEngine::start_warm(ModelKind::TmnNm, &mcfg, cfg, &corpus, &store)
        .expect("warm start");
    let h = engine.handle();
    let status = h.status().expect("status");
    assert_eq!(status.corpus, n, "warm corpus incomplete");
    assert_eq!(status.cache_entries, n, "warm cache incomplete");
    let top = h.query(trajs[11].clone(), 3).expect("warm query");
    assert_eq!(top[0].0, 11, "warm self-NN failed: {top:?}");
    engine.shutdown();

    println!(
        "store smoke OK: {n} trajectories round-tripped, corruption rejected, \
         blocked==dense bitwise, eval shard-invariant, warm serve live"
    );
}
