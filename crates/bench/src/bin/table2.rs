//! Table II — effectiveness of all six models under all six distance
//! metrics on both datasets (HR-10 / HR-50 / R10@50).
//!
//! Usage: `cargo run -p tmn-bench --release --bin table2 [--quick|--full]`
//! Optional filters: `--metric dtw` `--dataset porto` `--model tmn`.

use tmn::prelude::*;
use tmn_bench::{write_json, Ctx, RunResult, RunSpec, Scale, Table};

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let scale = Scale::from_args();
    let metric_filter: Option<Metric> = arg_value("--metric").map(|m| m.parse().expect("bad metric"));
    let dataset_filter = arg_value("--dataset").map(|d| d.to_lowercase());
    let model_filter = arg_value("--model").map(|m| m.to_lowercase());

    let datasets = [DatasetKind::GeolifeLike, DatasetKind::PortoLike];
    let models = ModelKind::ALL;
    let metrics = Metric::ALL;

    let mut ctx = Ctx::new();
    let mut results: Vec<RunResult> = Vec::new();

    eprintln!(
        "Table II reproduction — scale {} ({} trajectories/dataset, {} epochs, d={})",
        scale.name(),
        scale.dataset_size(),
        scale.epochs(),
        scale.dim()
    );

    for dataset in datasets {
        if let Some(f) = &dataset_filter {
            if !dataset.name().to_lowercase().contains(f) {
                continue;
            }
        }
        for metric in metrics {
            if let Some(mf) = metric_filter {
                if mf != metric {
                    continue;
                }
            }
            let mut table = Table::new(&["Dataset", "Metric", "Method", "HR-10", "HR-50", "R10@50"]);
            for model in models {
                if let Some(f) = &model_filter {
                    if !model.name().to_lowercase().contains(f) {
                        continue;
                    }
                }
                let spec = RunSpec::standard(dataset, metric, model, scale);
                let r = ctx.run(&spec);
                eprintln!(
                    "  {} / {} / {}: HR-10 {:.4} (train {:.1}s/epoch, eval {:.1}s)",
                    r.dataset, r.metric, r.model, r.eval.hr10, r.train_seconds_per_epoch, r.eval_seconds
                );
                table.row(&[
                    r.dataset.clone(),
                    r.metric.clone(),
                    r.model.clone(),
                    format!("{:.4}", r.eval.hr10),
                    format!("{:.4}", r.eval.hr50),
                    format!("{:.4}", r.eval.r10_50),
                ]);
                results.push(r);
            }
            println!();
            table.print();
        }
    }
    write_json("table2", &results).expect("write results");
}
