//! Kill-and-resume CI smoke: train with periodic checkpoints, abort at an
//! arbitrary gradient step, resume from the on-disk checkpoint pair in a
//! fresh trainer, and require the final weight fingerprint to match an
//! uninterrupted run bit for bit — for the serial trainer (threads=1) and
//! the data-parallel one (threads=4).
//!
//! Usage: `cargo run -p tmn-bench --release --bin resume_smoke`
//!
//! Exits non-zero (via panic) on any divergence, so `scripts/ci.sh` can use
//! it as a durability gate.

use tmn::prelude::*;
use tmn_core::{CheckpointStore, LoadedFrom};

const MCFG: ModelConfig = ModelConfig { dim: 16, seed: 9 };

fn toy_set(n: usize) -> Vec<Trajectory> {
    (0..n)
        .map(|i| {
            let off = i as f64 / n as f64;
            (0..16).map(|t| Point::new(0.06 * t as f64, off + 0.01 * (t % 3) as f64)).collect()
        })
        .collect()
}

fn config(threads: usize, dir: Option<String>) -> TrainConfig {
    TrainConfig {
        epochs: 2,
        sampling_number: 6,
        batch_pairs: 12,
        sub_stride: 5,
        seed: 11,
        threads,
        checkpoint_every: if dir.is_some() { 2 } else { 0 },
        checkpoint_dir: dir,
        ..Default::default()
    }
}

fn build_trainer<'a>(
    model: &'a dyn PairModel,
    train: &'a [Trajectory],
    dmat: &'a DistanceMatrix,
    cfg: TrainConfig,
) -> Trainer<'a> {
    let threads = cfg.threads;
    let trainer = Trainer::new(
        model,
        train,
        dmat,
        Metric::Dtw,
        MetricParams::default(),
        Box::new(RankSampler),
        cfg,
        None,
    );
    if threads > 1 {
        trainer.with_replicas(ModelKind::Tmn, MCFG)
    } else {
        trainer
    }
}

fn smoke(threads: usize, kill_at: u64, corrupt_latest: bool) {
    let train = toy_set(14);
    let dmat = DistanceMatrix::compute(&train, Metric::Dtw, &MetricParams::default(), 1);

    // Reference: uninterrupted run.
    let model = ModelKind::Tmn.build(&MCFG);
    let mut trainer = build_trainer(model.as_ref(), &train, &dmat, config(threads, None));
    trainer.train();
    let want = model.params().fingerprint();

    // Interrupted run: checkpoints every 2 steps, killed at `kill_at`.
    let dir = std::env::temp_dir()
        .join(format!("tmn_resume_smoke_t{threads}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = config(threads, Some(dir.display().to_string()));
    {
        let model = ModelKind::Tmn.build(&MCFG);
        let mut trainer =
            build_trainer(model.as_ref(), &train, &dmat, cfg.clone()).with_step_limit(kill_at);
        trainer.train();
        assert_eq!(trainer.steps(), kill_at, "step limit did not halt at {kill_at}");
    }
    if corrupt_latest {
        let store = CheckpointStore::open(&dir).expect("open store");
        let mut bytes = std::fs::read(store.latest_path()).expect("read latest");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        std::fs::write(store.latest_path(), &bytes).expect("corrupt latest");
    }

    // "New process": fresh model with a different seed; everything must
    // come off disk.
    let model = ModelKind::Tmn.build(&ModelConfig { dim: 16, seed: 4242 });
    let mut trainer = build_trainer(model.as_ref(), &train, &dmat, cfg);
    let from = trainer.resume_latest().expect("resume from checkpoint");
    if corrupt_latest {
        assert_eq!(from, LoadedFrom::Prev, "corrupt latest must recover from prev");
    }
    trainer.train();
    let got = model.params().fingerprint();
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(
        got, want,
        "threads={threads} kill_at={kill_at} corrupt={corrupt_latest}: resumed weights diverged"
    );
    println!(
        "  threads={threads} kill_at={kill_at} corrupt_latest={corrupt_latest}: \
         fingerprint {got:#018x} matches uninterrupted run"
    );
}

fn main() {
    println!("resume smoke: kill-and-resume must be bit-identical");
    // Off-cadence kill (checkpoints land on even steps) for both trainers.
    smoke(1, 7, false);
    smoke(4, 7, false);
    // Corrupted `latest` must fall back to `prev` and still converge to the
    // identical weights (deterministic replay of the extra steps).
    smoke(1, 7, true);
    println!("resume smoke OK");
}
