//! Table III — efficiency study on the Porto-like dataset: exact distance
//! computation vs learning-based models (training s/epoch, per-trajectory
//! inference, per-pair similarity computation).
//!
//! Usage: `cargo run -p tmn-bench --release --bin table3 [--quick|--full]`

use std::time::Instant;
use tmn::prelude::*;
use tmn_bench::{write_json, Ctx, Scale, Table};
use tmn_eval::{
    time_embedding_distance, time_exact_pairwise_counted, time_inference_split, EfficiencyRow,
};

fn main() {
    let scale = Scale::from_args();
    // Exact pairwise over a sample of trajectories (the paper samples 1,000).
    let n_exact = match scale {
        Scale::Quick => 100,
        Scale::Default => 300,
        Scale::Full => 1000,
    };
    let mut ctx = Ctx::new();
    let ds = ctx.dataset(DatasetKind::PortoLike, scale.dataset_size(), 42);
    let params = MetricParams::default();

    eprintln!("Table III reproduction — scale {} (exact over {n_exact} trajectories)", scale.name());
    let mut rows: Vec<EfficiencyRow> = Vec::new();

    // Exact metrics: Fréchet, DTW, ERP as in the paper's Table III.
    let exact_sample: Vec<Trajectory> = ds
        .test
        .iter()
        .cycle()
        .take(n_exact)
        .cloned()
        .collect();
    for metric in [Metric::Frechet, Metric::Dtw, Metric::Erp] {
        // Counted timing hands back the denominator, so the per-pair mean
        // in `computation_s` needs no re-derived n*(n-1)/2.
        let (secs, pairs) = time_exact_pairwise_counted(&exact_sample, metric, &params);
        eprintln!("  exact {metric}: {secs:.2}s for all pairwise ({pairs} pairs)");
        rows.push(EfficiencyRow {
            method: metric.name().to_string(),
            training_s: None,
            inference_s: None,
            inference_graphed_s: None,
            computation_s: secs / pairs.max(1) as f64,
            computation_ops: Some(pairs),
        });
    }

    // Learning-based models: SRN, NeuTraj, T3S, TMN as in the paper.
    let dmat = ds.train_distance_matrix(Metric::Dtw, &params, 2);
    let per_pair = time_embedding_distance(scale.dim() * 4, 10_000);
    for kind in [ModelKind::Srn, ModelKind::NeuTraj, ModelKind::T3s, ModelKind::Tmn] {
        let model = kind.build(&ModelConfig { dim: scale.dim(), seed: 42 });
        let cfg = TrainConfig { epochs: 1, use_sub_loss: kind.uses_sub_loss(), ..Default::default() };
        let mut trainer = Trainer::new(
            model.as_ref(),
            &ds.train,
            &dmat,
            Metric::Dtw,
            params,
            Box::new(RankSampler),
            cfg,
            None,
        );
        let t0 = Instant::now();
        trainer.train_epoch(0);
        let train_s = t0.elapsed().as_secs_f64();
        // Inference: TMN's representations are pair-dependent, so encoding a
        // trajectory costs a full pair forward (the paper's 0.072 s vs
        // 0.00059 s asymmetry); for the others one siamese pass amortizes.
        // Both forwards are timed: the tape-free serving path is the model's
        // real cost, the graphed pass shows the autograd overhead that older
        // revisions folded into a single conflated number.
        let split =
            time_inference_split(model.as_ref(), &ds.test[..50.min(ds.test.len())], 16);
        let n = split.trajectories.max(1) as f64;
        let (infer_s, infer_graphed_s) = (split.nograd_s / n, split.graphed_s / n);
        eprintln!(
            "  {kind}: train {train_s:.2}s/epoch, inference {infer_s:.6}s/traj \
             (graphed {infer_graphed_s:.6}s, {n} trajs)"
        );
        rows.push(EfficiencyRow {
            method: kind.name().to_string(),
            training_s: Some(train_s),
            inference_s: Some(infer_s),
            inference_graphed_s: Some(infer_graphed_s),
            computation_s: per_pair,
            computation_ops: Some(10_000),
        });
    }

    let mut table =
        Table::new(&["Method", "Training(s)", "Inference(s)", "Infer-graphed(s)", "Computation(s)"]);
    for r in &rows {
        table.row(&[
            r.method.clone(),
            r.training_s.map(|v| format!("{v:.2}")).unwrap_or_else(|| "/".into()),
            r.inference_s.map(|v| format!("{v:.6}")).unwrap_or_else(|| "/".into()),
            r.inference_graphed_s.map(|v| format!("{v:.6}")).unwrap_or_else(|| "/".into()),
            format!("{:.2e}", r.computation_s),
        ]);
    }
    println!();
    table.print();
    write_json("table3", &rows).expect("write results");
}
