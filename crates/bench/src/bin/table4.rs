//! Table IV — sampling-method ablation: TMN (random-rank sampling) vs
//! TMN-kd (Traj2SimVec's k-d-tree sampling) on the Porto-like dataset under
//! all six metrics.
//!
//! Usage: `cargo run -p tmn-bench --release --bin table4 [--quick|--full]`

use tmn::prelude::*;
use tmn_bench::{write_json, Ctx, RunResult, RunSpec, SamplerKind, Scale, Table};

fn main() {
    let scale = Scale::from_args();
    let mut ctx = Ctx::new();
    let mut results: Vec<RunResult> = Vec::new();

    eprintln!("Table IV reproduction — scale {}", scale.name());
    let mut table = Table::new(&["Metric", "Evaluation", "TMN", "TMN-kd"]);
    for metric in Metric::ALL {
        let mut rank_spec = RunSpec::standard(DatasetKind::PortoLike, metric, ModelKind::Tmn, scale);
        rank_spec.sampler = SamplerKind::Rank;
        let mut kd_spec = rank_spec.clone();
        kd_spec.sampler = SamplerKind::Kd;
        let r_rank = ctx.run(&rank_spec);
        let r_kd = ctx.run(&kd_spec);
        eprintln!(
            "  {metric}: TMN HR-10 {:.4} vs TMN-kd {:.4}",
            r_rank.eval.hr10, r_kd.eval.hr10
        );
        table.row(&[
            metric.name().into(),
            "HR-10".into(),
            format!("{:.4}", r_rank.eval.hr10),
            format!("{:.4}", r_kd.eval.hr10),
        ]);
        table.row(&[
            metric.name().into(),
            "HR-50".into(),
            format!("{:.4}", r_rank.eval.hr50),
            format!("{:.4}", r_kd.eval.hr50),
        ]);
        table.row(&[
            metric.name().into(),
            "R10@50".into(),
            format!("{:.4}", r_rank.eval.r10_50),
            format!("{:.4}", r_kd.eval.r10_50),
        ]);
        results.push(r_rank);
        results.push(r_kd);
    }
    println!();
    table.print();
    write_json("table4", &results).expect("write results");
}
