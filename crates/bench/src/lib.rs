//! # tmn-bench
//!
//! Experiment harness regenerating every table and figure of the TMN
//! paper's evaluation (Section V). Each table/figure has a binary:
//!
//! | Paper artifact | Binary |
//! |---|---|
//! | Table II (effectiveness, 6 metrics × 2 datasets × 6 models) | `table2` |
//! | Table III (efficiency: exact vs learned) | `table3` |
//! | Table IV (sampling ablation TMN vs TMN-kd) | `table4` |
//! | Fig. 3 (loss ablation MSE vs Q-error) | `fig3` |
//! | Fig. 4 (dimension & learning-rate sensitivity) | `fig4` |
//! | Fig. 5 (sampling number & sub-trajectory-loss ablation) | `fig5` |
//!
//! All binaries accept `--quick` (CI-sized), default (laptop-sized) or
//! `--full` (paper-shaped) scales and print the same rows/series the paper
//! reports; JSON results land in `results/`.

pub mod report;
pub mod runner;

pub use report::{write_json, Table};
pub use runner::{Ctx, RunResult, RunSpec, SamplerKind, Scale};
