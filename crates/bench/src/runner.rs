//! Shared experiment runner: builds datasets and ground truth (cached per
//! process), trains a model under one metric, and evaluates the top-k
//! search protocol.

use std::collections::HashMap;
use std::rc::Rc;
use std::time::Instant;
use tmn::prelude::*;

/// Experiment scale. `Quick` is CI-sized; `Full` approaches the paper's
/// relative proportions within a CPU budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    Quick,
    Default,
    Full,
}

impl Scale {
    /// Parse from argv: `--quick` / `--full`, default otherwise.
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--quick") {
            Scale::Quick
        } else if args.iter().any(|a| a == "--full") {
            Scale::Full
        } else {
            Scale::Default
        }
    }

    /// Total trajectories per dataset (20% train).
    pub fn dataset_size(&self) -> usize {
        match self {
            Scale::Quick => 120,
            Scale::Default => 300,
            Scale::Full => 700,
        }
    }

    pub fn epochs(&self) -> usize {
        match self {
            Scale::Quick => 3,
            Scale::Default => 8,
            Scale::Full => 12,
        }
    }

    pub fn dim(&self) -> usize {
        match self {
            Scale::Quick => 16,
            Scale::Default => 32,
            Scale::Full => 48,
        }
    }

    pub fn queries(&self) -> usize {
        match self {
            Scale::Quick => 25,
            Scale::Default => 50,
            Scale::Full => 80,
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Default => "default",
            Scale::Full => "full",
        }
    }
}

/// Which sampling strategy trains the model (Table IV ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplerKind {
    /// TMN's random-rank sampling (Section IV-C).
    Rank,
    /// Traj2SimVec's k-d-tree sampling.
    Kd,
}

/// One (dataset, metric, model, recipe) training + evaluation run.
#[derive(Debug, Clone)]
pub struct RunSpec {
    pub dataset: DatasetKind,
    pub dataset_size: usize,
    pub metric: Metric,
    pub model: ModelKind,
    pub dim: usize,
    pub train: TrainConfig,
    pub sampler: SamplerKind,
    pub queries: usize,
    pub seed: u64,
}

impl RunSpec {
    /// Standard spec for a model under the paper's recipe at a scale:
    /// sub-loss and sampler follow the model's published training recipe.
    pub fn standard(dataset: DatasetKind, metric: Metric, model: ModelKind, scale: Scale) -> RunSpec {
        let train = TrainConfig {
            epochs: scale.epochs(),
            use_sub_loss: model.uses_sub_loss(),
            ..Default::default()
        };
        RunSpec {
            dataset,
            dataset_size: scale.dataset_size(),
            metric,
            model,
            dim: scale.dim(),
            train,
            sampler: if model.uses_kd_sampling() { SamplerKind::Kd } else { SamplerKind::Rank },
            queries: scale.queries(),
            seed: 42,
        }
    }
}

/// Outcome of one run.
#[derive(Debug, Clone, serde::Serialize)]
pub struct RunResult {
    pub dataset: String,
    pub metric: String,
    pub model: String,
    pub sampler: String,
    pub eval: Evaluation,
    pub final_loss: f32,
    pub train_seconds_per_epoch: f64,
    pub eval_seconds: f64,
}

/// Per-process cache of datasets and ground-truth matrices so a table
/// binary computes each (dataset, metric) ground truth once.
#[derive(Default)]
pub struct Ctx {
    datasets: HashMap<(DatasetKind, usize, u64), Rc<Dataset>>,
    train_dmats: HashMap<(DatasetKind, usize, u64, Metric), Rc<DistanceMatrix>>,
    test_dmats: HashMap<(DatasetKind, usize, u64, Metric), Rc<DistanceMatrix>>,
    pub threads: usize,
}

impl Ctx {
    pub fn new() -> Ctx {
        Ctx { threads: 2, ..Default::default() }
    }

    pub fn dataset(&mut self, kind: DatasetKind, size: usize, seed: u64) -> Rc<Dataset> {
        self.datasets
            .entry((kind, size, seed))
            .or_insert_with(|| Rc::new(Dataset::generate(&DatasetConfig::new(kind, size, seed))))
            .clone()
    }

    fn dmat(
        &mut self,
        kind: DatasetKind,
        size: usize,
        seed: u64,
        metric: Metric,
        test: bool,
    ) -> Rc<DistanceMatrix> {
        let ds = self.dataset(kind, size, seed);
        let threads = self.threads;
        let map = if test { &mut self.test_dmats } else { &mut self.train_dmats };
        map.entry((kind, size, seed, metric))
            .or_insert_with(|| {
                let params = MetricParams::default();
                let m = if test {
                    ds.test_distance_matrix(metric, &params, threads)
                } else {
                    ds.train_distance_matrix(metric, &params, threads)
                };
                Rc::new(m)
            })
            .clone()
    }

    /// Run one spec end-to-end: train, then evaluate top-k search.
    pub fn run(&mut self, spec: &RunSpec) -> RunResult {
        let ds = self.dataset(spec.dataset, spec.dataset_size, spec.seed);
        let train_dmat = self.dmat(spec.dataset, spec.dataset_size, spec.seed, spec.metric, false);
        let test_dmat = self.dmat(spec.dataset, spec.dataset_size, spec.seed, spec.metric, true);
        let params = MetricParams::default();

        let model = spec.model.build(&ModelConfig { dim: spec.dim, seed: spec.seed });
        let sampler: Box<dyn Sampler> = match spec.sampler {
            SamplerKind::Rank => Box::new(RankSampler),
            SamplerKind::Kd => Box::new(KdSampler::build(&ds.train, 10)),
        };
        let mut trainer = Trainer::new(
            model.as_ref(),
            &ds.train,
            &*train_dmat,
            spec.metric,
            params,
            sampler,
            spec.train.clone(),
            None,
        )
        .with_replicas(spec.model, ModelConfig { dim: spec.dim, seed: spec.seed });
        let stats = trainer.train();

        let nq = spec.queries.min(ds.test.len());
        let queries: Vec<usize> = (0..nq).collect();
        let t_eval = Instant::now();
        let pred = predicted_distance_rows(model.as_ref(), &ds.test, &queries, 64);
        let truth: Vec<Vec<f64>> = queries.iter().map(|&q| test_dmat.row(q).to_vec()).collect();
        let eval = evaluate(&pred, &truth, &queries);
        RunResult {
            dataset: ds.name.to_string(),
            metric: spec.metric.name().to_string(),
            model: spec.model.name().to_string(),
            sampler: match spec.sampler {
                SamplerKind::Rank => "rank".to_string(),
                SamplerKind::Kd => "kdtree".to_string(),
            },
            eval,
            final_loss: stats.final_loss(),
            train_seconds_per_epoch: stats.seconds_per_epoch(),
            eval_seconds: t_eval.elapsed().as_secs_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing_defaults() {
        // from_args reads real argv; just check the table values.
        assert!(Scale::Quick.dataset_size() < Scale::Full.dataset_size());
        assert!(Scale::Quick.epochs() < Scale::Full.epochs());
    }

    #[test]
    fn standard_spec_follows_recipes() {
        let s = RunSpec::standard(DatasetKind::PortoLike, Metric::Dtw, ModelKind::Traj2SimVec, Scale::Quick);
        assert_eq!(s.sampler, SamplerKind::Kd);
        assert!(s.train.use_sub_loss);
        let s2 = RunSpec::standard(DatasetKind::PortoLike, Metric::Dtw, ModelKind::Srn, Scale::Quick);
        assert_eq!(s2.sampler, SamplerKind::Rank);
        assert!(!s2.train.use_sub_loss);
    }

    #[test]
    fn ctx_caches_datasets() {
        let mut ctx = Ctx::new();
        let a = ctx.dataset(DatasetKind::PortoLike, 40, 1);
        let b = ctx.dataset(DatasetKind::PortoLike, 40, 1);
        assert!(Rc::ptr_eq(&a, &b));
    }

    #[test]
    fn tiny_run_produces_finite_metrics() {
        let mut ctx = Ctx::new();
        let mut spec =
            RunSpec::standard(DatasetKind::PortoLike, Metric::Hausdorff, ModelKind::Srn, Scale::Quick);
        spec.dataset_size = 60;
        spec.train.epochs = 1;
        spec.queries = 5;
        let r = ctx.run(&spec);
        assert!(r.final_loss.is_finite());
        assert!((0.0..=1.0).contains(&r.eval.hr10));
        assert!((0.0..=1.0).contains(&r.eval.r10_50));
    }
}
