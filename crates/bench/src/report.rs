//! Plain-text table rendering and JSON result persistence.

use std::fs;
use std::path::Path;

/// A simple fixed-width text table (the binaries print paper-shaped rows).
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(headers: &[&str]) -> Table {
        Table { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(&format!("{:<width$}  ", c, width = w));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Serialize results as pretty JSON under `results/<name>.json`.
pub fn write_json<T: serde::Serialize>(name: &str, value: &T) -> std::io::Result<()> {
    let dir = Path::new("results");
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    fs::write(&path, serde_json::to_string_pretty(value).expect("serializable"))?;
    eprintln!("wrote {}", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["Model", "HR-10"]);
        t.row(&["TMN".into(), "0.6072".into()]);
        t.row(&["NeuTraj".into(), "0.4341".into()]);
        let s = t.render();
        assert!(s.contains("Model"));
        assert!(s.lines().count() == 4);
        // Columns align: every data line has the metric at the same offset.
        let lines: Vec<&str> = s.lines().collect();
        let off = lines[2].find("0.6072").unwrap();
        assert_eq!(lines[3].find("0.4341").unwrap(), off);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }
}
