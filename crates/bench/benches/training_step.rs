//! Criterion microbench: one full gradient step (forward + backward + Adam)
//! per model — the building block behind Table III's training column.

use criterion::{criterion_group, criterion_main, Criterion};
use tmn::prelude::*;
use tmn_autograd::optim::{train_step, Adam};
use tmn_core::pair_loss;

fn traj(seed: usize, len: usize) -> Trajectory {
    (0..len)
        .map(|i| {
            Point::new(
                ((seed * 131 + i * 17) % 101) as f64 / 101.0,
                ((seed * 37 + i * 11) % 103) as f64 / 103.0,
            )
        })
        .collect()
}

fn bench_step(c: &mut Criterion) {
    let pairs = 16usize;
    let a: Vec<Trajectory> = (0..pairs).map(|i| traj(i, 40)).collect();
    let b: Vec<Trajectory> = (0..pairs).map(|i| traj(i + 500, 40)).collect();
    let ar: Vec<&Trajectory> = a.iter().collect();
    let br: Vec<&Trajectory> = b.iter().collect();
    let batch = tmn::core::PairBatch::build(&ar, &br);
    let targets = PairTargets {
        sim: (0..pairs).map(|i| 0.5 + 0.4 * ((i % 2) as f32)).collect(),
        weight: vec![1.0 / pairs as f32; pairs],
        sub: vec![vec![(10, 0.6), (20, 0.55), (30, 0.5)]; pairs],
    };
    let cfg = ModelConfig { dim: 32, seed: 4 };
    let mut group = c.benchmark_group("gradient_step_16x40");
    group.sample_size(10);
    for kind in ModelKind::ALL {
        let model = kind.build(&cfg);
        let mut opt = Adam::new(model.params(), 1e-3);
        group.bench_function(kind.name(), |bencher| {
            bencher.iter(|| {
                let enc = model.encode_pairs(&batch);
                let loss = pair_loss(&enc, &batch, &targets, LossKind::Mse);
                train_step(model.params(), &mut opt, &loss, 5.0)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_step);
criterion_main!(benches);
