//! Criterion microbench: forward-pass throughput of every model, and the
//! overhead the matching mechanism adds over TMN-NM.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tmn::prelude::*;
use tmn_autograd::no_grad;

fn traj(seed: usize, len: usize) -> Trajectory {
    (0..len)
        .map(|i| {
            Point::new(
                ((seed * 131 + i * 17) % 101) as f64 / 101.0,
                ((seed * 37 + i * 11) % 103) as f64 / 103.0,
            )
        })
        .collect()
}

fn make_batch(pairs: usize, len: usize) -> (Vec<Trajectory>, Vec<Trajectory>) {
    let a: Vec<Trajectory> = (0..pairs).map(|i| traj(i, len)).collect();
    let b: Vec<Trajectory> = (0..pairs).map(|i| traj(i + 1000, len)).collect();
    (a, b)
}

fn bench_model_encode(c: &mut Criterion) {
    let (a, b) = make_batch(16, 48);
    let ar: Vec<&Trajectory> = a.iter().collect();
    let br: Vec<&Trajectory> = b.iter().collect();
    let batch = tmn::core::PairBatch::build(&ar, &br);
    let cfg = ModelConfig { dim: 32, seed: 1 };
    let mut group = c.benchmark_group("model_encode_16x48");
    for kind in ModelKind::ALL {
        let model = kind.build(&cfg);
        group.bench_function(kind.name(), |bencher| {
            bencher.iter(|| no_grad(|| model.encode_pairs(&batch)))
        });
    }
    group.finish();
}

fn bench_matching_overhead_vs_length(c: &mut Criterion) {
    // The matching mechanism is O(m²·d̂); TMN-NM is O(m·d̂). This ablation
    // bench quantifies the gap the paper's Table III hints at.
    let cfg = ModelConfig { dim: 32, seed: 2 };
    let tmn = ModelKind::Tmn.build(&cfg);
    let nm = ModelKind::TmnNm.build(&cfg);
    let mut group = c.benchmark_group("matching_overhead");
    for len in [24usize, 48, 96] {
        let (a, b) = make_batch(8, len);
        let ar: Vec<&Trajectory> = a.iter().collect();
        let br: Vec<&Trajectory> = b.iter().collect();
        let batch = tmn::core::PairBatch::build(&ar, &br);
        group.bench_with_input(BenchmarkId::new("TMN", len), &batch, |bencher, batch| {
            bencher.iter(|| no_grad(|| tmn.encode_pairs(batch)))
        });
        group.bench_with_input(BenchmarkId::new("TMN-NM", len), &batch, |bencher, batch| {
            bencher.iter(|| no_grad(|| nm.encode_pairs(batch)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_model_encode, bench_matching_overhead_vs_length
}
criterion_main!(benches);
