//! Criterion microbench: cost of the exact distance metrics vs trajectory
//! length. Backs the paper's premise that exact computation is O(n²) and
//! motivates the learned approximation (Section I, Table III).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tmn::prelude::*;

fn random_traj(rng: &mut StdRng, len: usize) -> Trajectory {
    (0..len)
        .map(|_| Point::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)))
        .collect()
}

fn bench_metrics(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let params = MetricParams { eps: 0.1, ..Default::default() };
    let mut group = c.benchmark_group("exact_metric_distance");
    for len in [32usize, 64, 128] {
        let a = random_traj(&mut rng, len);
        let b = random_traj(&mut rng, len);
        for metric in Metric::ALL {
            group.bench_with_input(
                BenchmarkId::new(metric.name(), len),
                &(&a, &b),
                |bencher, (a, b)| bencher.iter(|| metric.distance(a, b, &params)),
            );
        }
    }
    group.finish();
}

fn bench_matching_extraction(c: &mut Criterion) {
    // Distance + warping-path extraction (Figure 1) vs distance only.
    let mut rng = StdRng::seed_from_u64(2);
    let a = random_traj(&mut rng, 64);
    let b = random_traj(&mut rng, 64);
    let mut group = c.benchmark_group("dtw_matching_overhead");
    group.bench_function("distance_only", |bencher| {
        bencher.iter(|| tmn::traj::metrics::dtw(&a, &b))
    });
    group.bench_function("with_matching", |bencher| {
        bencher.iter(|| tmn::traj::metrics::dtw_matching(&a, &b))
    });
    group.finish();
}

fn bench_prefix_distances(c: &mut Criterion) {
    // All prefixes in one DP pass (sub-trajectory loss supervision) vs
    // recomputing each prefix naively.
    let mut rng = StdRng::seed_from_u64(3);
    let a = random_traj(&mut rng, 60);
    let b = random_traj(&mut rng, 60);
    let params = MetricParams::default();
    let mut group = c.benchmark_group("prefix_distances_dtw");
    group.bench_function("single_pass", |bencher| {
        bencher.iter(|| prefix_distances(Metric::Dtw, &a, &b, 10, &params))
    });
    group.bench_function("naive_recompute", |bencher| {
        bencher.iter(|| {
            (1..=6)
                .map(|k| Metric::Dtw.distance(&a.prefix(10 * k), &b.prefix(10 * k), &params))
                .collect::<Vec<_>>()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_metrics, bench_matching_extraction, bench_prefix_distances
}
criterion_main!(benches);
