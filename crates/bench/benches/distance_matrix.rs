//! Criterion microbench: ground-truth distance-matrix construction, serial
//! vs multi-threaded (the dominant preprocessing cost of training).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tmn::prelude::*;

fn random_trajs(n: usize, len: usize, seed: u64) -> Vec<Trajectory> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            (0..len)
                .map(|_| Point::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)))
                .collect()
        })
        .collect()
}

fn bench_matrix(c: &mut Criterion) {
    let trajs = random_trajs(60, 40, 3);
    let params = MetricParams::default();
    let mut group = c.benchmark_group("distance_matrix_60x40pts");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("dtw", threads),
            &threads,
            |bencher, &threads| {
                bencher.iter(|| DistanceMatrix::compute(&trajs, Metric::Dtw, &params, threads))
            },
        );
    }
    for metric in [Metric::Hausdorff, Metric::Frechet, Metric::Erp] {
        group.bench_with_input(
            BenchmarkId::new(metric.name(), 2),
            &metric,
            |bencher, &metric| {
                bencher.iter(|| DistanceMatrix::compute(&trajs, metric, &params, 2))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_matrix);
criterion_main!(benches);
