//! Criterion microbench: HNSW vs brute-force k-NN over trajectory
//! embeddings — the indexing speed-up the paper names as an immediate
//! benefit of embedding trajectories (Section I).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tmn::prelude::*;

fn random_embeddings(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect()
}

fn brute_knn(db: &[Vec<f32>], q: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..db.len()).collect();
    idx.sort_by(|&a, &b| {
        let da: f32 = q.iter().zip(&db[a]).map(|(x, y)| (x - y) * (x - y)).sum();
        let db_: f32 = q.iter().zip(&db[b]).map(|(x, y)| (x - y) * (x - y)).sum();
        da.partial_cmp(&db_).unwrap()
    });
    idx.truncate(k);
    idx
}

fn bench_knn(c: &mut Criterion) {
    const DIM: usize = 32;
    let mut group = c.benchmark_group("embedding_knn_top10");
    for n in [1_000usize, 5_000] {
        let db = random_embeddings(n, DIM, 7);
        let query = db[0].clone();
        let mut rng = StdRng::seed_from_u64(8);
        let mut hnsw = Hnsw::new(DIM, HnswConfig::default());
        for v in &db {
            hnsw.insert(v, &mut rng);
        }
        group.bench_with_input(BenchmarkId::new("brute_force", n), &db, |bencher, db| {
            bencher.iter(|| brute_knn(db, &query, 10))
        });
        group.bench_with_input(BenchmarkId::new("hnsw", n), &hnsw, |bencher, hnsw| {
            bencher.iter(|| hnsw.knn(&query, 10))
        });
    }
    group.finish();
}

fn bench_build(c: &mut Criterion) {
    const DIM: usize = 32;
    let db = random_embeddings(2_000, DIM, 9);
    let mut group = c.benchmark_group("index_build_2k");
    group.sample_size(10);
    group.bench_function("hnsw", |bencher| {
        bencher.iter(|| {
            let mut rng = StdRng::seed_from_u64(10);
            let mut h = Hnsw::new(DIM, HnswConfig::default());
            for v in &db {
                h.insert(v, &mut rng);
            }
            h.len()
        })
    });
    group.bench_function("kdtree", |bencher| {
        bencher.iter(|| KdTree::build(db.clone()).len())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_knn, bench_build
}
criterion_main!(benches);
