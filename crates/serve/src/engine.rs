//! The request plane: one engine thread owning the model, corpus, and warm
//! embedding cache, fed by an admission queue.
//!
//! The models are built from `Rc`-based tensors and are deliberately
//! `!Send`, so the engine thread *builds* its own model from
//! (`ModelKind`, `ModelConfig`) rather than receiving one. Everything that
//! crosses the channel is plain data: trajectories in, `(id, distance)`
//! lists out.
//!
//! Admission batching: the loop blocks on one request, then drains whatever
//! else is already queued (up to `max_batch`). Every trajectory that needs
//! an embedding across the drained batch — inserts and ad-hoc queries alike
//! — goes through a *single* [`encode_all`] call, so the fused-RNN
//! `embed_nograd` forward amortizes over the whole admission window instead
//! of running once per request.

use crate::shard::{ShardSet, ShardSetConfig, ShardSetStatus};
use crate::{
    ServeError, SERVE_BATCH_SIZE, SERVE_CACHE_CORRUPT_TOTAL, SERVE_CACHE_HITS_TOTAL,
    SERVE_QUERIES_TOTAL,
};
use serde::Serialize;
use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;
use tmn_core::{ModelConfig, ModelKind, PairModel};
use tmn_eval::{encode_all, EmbeddingStore};
use tmn_store::CorpusFile;
use tmn_obs::metrics;
use tmn_traj::Trajectory;

/// Request-plane configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    pub shard: ShardSetConfig,
    /// Admission window: how many queued requests one engine iteration
    /// drains (and therefore how many embeddings one forward amortizes).
    pub max_batch: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig { shard: ShardSetConfig::default(), max_batch: 32 }
    }
}

type Reply<T> = mpsc::Sender<Result<T, ServeError>>;

enum Req {
    Insert { id: u64, traj: Trajectory, reply: Reply<()> },
    Delete { id: u64, reply: Reply<bool> },
    Query { traj: Trajectory, k: usize, reply: Reply<Vec<(u64, f64)>> },
    QueryBatch { trajs: Vec<Trajectory>, k: usize, reply: Reply<Vec<Vec<(u64, f64)>>> },
    QueryId { id: u64, k: usize, reply: Reply<Vec<(u64, f64)>> },
    Status { reply: Reply<EngineStatus> },
    CorruptCache { id: u64, reply: Reply<bool> },
    Shutdown,
}

/// A cached embedding plus the checksum taken when it was computed. The
/// checksum is verified on every read; a mismatch means the bytes rotted
/// (or a fault test flipped them) and the entry must not be served.
struct CacheEntry {
    vec: Vec<f32>,
    sum: u64,
}

impl CacheEntry {
    fn new(vec: Vec<f32>) -> CacheEntry {
        let sum = checksum(&vec);
        CacheEntry { vec, sum }
    }

    fn valid(&self) -> bool {
        checksum(&self.vec) == self.sum
    }
}

/// FNV-1a over the embedding's f32 bit patterns.
fn checksum(v: &[f32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for x in v {
        for b in x.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Point-in-time engine snapshot, JSON-serializable for scrapers.
#[derive(Debug, Clone, Serialize)]
pub struct EngineStatus {
    pub model: String,
    pub dim: usize,
    /// Trajectories retained for cache recovery.
    pub corpus: usize,
    /// Warm embeddings currently cached.
    pub cache_entries: usize,
    pub shards: ShardSetStatus,
    /// True while any shard is fenced off; the engine is still serving,
    /// from the remaining shards.
    pub degraded_mode: bool,
}

impl EngineStatus {
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("EngineStatus is always serializable")
    }
}

/// Cheap clonable front door to the engine thread. Methods block until the
/// engine replies; any number of threads may hold handles.
#[derive(Clone)]
pub struct ServeHandle {
    tx: mpsc::Sender<Req>,
    shards: Arc<ShardSet>,
}

impl ServeHandle {
    fn call<T>(&self, make: impl FnOnce(Reply<T>) -> Req) -> Result<T, ServeError> {
        let (tx, rx) = mpsc::channel();
        self.tx.send(make(tx)).map_err(|_| ServeError::EngineDown)?;
        rx.recv().map_err(|_| ServeError::EngineDown)?
    }

    /// Insert (or re-insert) trajectory `id`. A re-insert replaces the
    /// stored embedding and invalidates the cached one.
    pub fn insert(&self, id: u64, traj: Trajectory) -> Result<(), ServeError> {
        self.call(|reply| Req::Insert { id, traj, reply })
    }

    /// Delete trajectory `id`; `Ok(false)` when it was not live.
    pub fn delete(&self, id: u64) -> Result<bool, ServeError> {
        self.call(|reply| Req::Delete { id, reply })
    }

    /// Top-`k` most similar corpus trajectories to an ad-hoc query
    /// trajectory, as `(id, embedding distance)` ascending.
    pub fn query(&self, traj: Trajectory, k: usize) -> Result<Vec<(u64, f64)>, ServeError> {
        self.call(|reply| Req::Query { traj, k, reply })
    }

    /// Batched [`query`](ServeHandle::query): all embeddings computed in
    /// one forward.
    pub fn query_batch(
        &self,
        trajs: Vec<Trajectory>,
        k: usize,
    ) -> Result<Vec<Vec<(u64, f64)>>, ServeError> {
        self.call(|reply| Req::QueryBatch { trajs, k, reply })
    }

    /// Top-`k` for a trajectory already in the corpus, served from the warm
    /// embedding cache when its checksum verifies (recomputed via
    /// `embed_nograd` when it does not).
    pub fn query_id(&self, id: u64, k: usize) -> Result<Vec<(u64, f64)>, ServeError> {
        self.call(|reply| Req::QueryId { id, k, reply })
    }

    pub fn status(&self) -> Result<EngineStatus, ServeError> {
        self.call(|reply| Req::Status { reply })
    }

    /// Fault-injection hook: flip one bit of `id`'s cached embedding
    /// without touching its checksum. `Ok(false)` when nothing was cached.
    pub fn corrupt_cache(&self, id: u64) -> Result<bool, ServeError> {
        self.call(|reply| Req::CorruptCache { id, reply })
    }

    /// Direct access to the vector-level data plane (bypasses the model;
    /// used by stress tests and by callers that precompute embeddings).
    pub fn shards(&self) -> &Arc<ShardSet> {
        &self.shards
    }
}

/// The serving engine: owns the worker thread. Dropping it (or calling
/// [`shutdown`](ServeEngine::shutdown)) stops the thread after the
/// in-flight admission batch drains.
pub struct ServeEngine {
    handle: ServeHandle,
    join: Option<JoinHandle<()>>,
}

impl ServeEngine {
    /// Spawn the engine thread for `kind`. Pair-dependent models (full TMN)
    /// are rejected up front: their representations depend on the paired
    /// candidate, so a precomputed vector index cannot serve them — use
    /// [`ModelKind::TmnNm`] (the paper's ablation keeps 99%+ of the
    /// quality) or any other independent-embedding model.
    pub fn start(
        kind: ModelKind,
        mcfg: &ModelConfig,
        cfg: ServeConfig,
    ) -> Result<ServeEngine, ServeError> {
        if kind == ModelKind::Tmn {
            return Err(ServeError::PairDependentModel(kind.name()));
        }
        let shards = Arc::new(ShardSet::new(mcfg.dim, cfg.shard.clone()));
        let (tx, rx) = mpsc::channel();
        let thread_shards = Arc::clone(&shards);
        let mcfg = *mcfg;
        let join = std::thread::Builder::new()
            .name("tmn-serve-engine".into())
            .spawn(move || {
                let model = kind.build(&mcfg);
                assert!(!model.is_pair_dependent(), "pair-dependence was checked at start");
                assert_eq!(model.dim(), thread_shards.dim(), "model dim vs shard dim");
                run(model, thread_shards, rx, cfg.max_batch.max(1), HashMap::new(), HashMap::new());
            })
            .expect("spawn tmn-serve engine thread");
        Ok(ServeEngine { handle: ServeHandle { tx, shards }, join: Some(join) })
    }

    /// [`start`](ServeEngine::start), but warm: the corpus trajectories and
    /// their embeddings come from the on-disk store (`tmn-store` files), so
    /// the engine begins life with every shard populated and every cache
    /// entry checksummed — no per-trajectory re-encoding, no cold queries.
    /// Row `i` of both files becomes external id `i`.
    ///
    /// The embeddings must have been produced by the same model/weights the
    /// engine is being started with; the engine checks dimensions and
    /// counts, not provenance.
    pub fn start_warm(
        kind: ModelKind,
        mcfg: &ModelConfig,
        cfg: ServeConfig,
        corpus_file: &CorpusFile,
        embeddings: &EmbeddingStore,
    ) -> Result<ServeEngine, ServeError> {
        if kind == ModelKind::Tmn {
            return Err(ServeError::PairDependentModel(kind.name()));
        }
        if embeddings.dim() != mcfg.dim {
            return Err(ServeError::DimMismatch { expected: mcfg.dim, got: embeddings.dim() });
        }
        assert_eq!(
            corpus_file.len(),
            embeddings.len(),
            "corpus and embedding stores must have one row per trajectory"
        );
        let shards = Arc::new(ShardSet::new(mcfg.dim, cfg.shard.clone()));
        shards.warm_load(embeddings)?;
        let view = corpus_file.view();
        let mut corpus: HashMap<u64, Trajectory> = HashMap::with_capacity(corpus_file.len());
        let mut cache: HashMap<u64, CacheEntry> = HashMap::with_capacity(corpus_file.len());
        for i in 0..corpus_file.len() {
            corpus.insert(i as u64, view.get(i));
            cache.insert(i as u64, CacheEntry::new(embeddings.get(i).to_vec()));
        }
        let (tx, rx) = mpsc::channel();
        let thread_shards = Arc::clone(&shards);
        let mcfg = *mcfg;
        let join = std::thread::Builder::new()
            .name("tmn-serve-engine".into())
            .spawn(move || {
                let model = kind.build(&mcfg);
                assert!(!model.is_pair_dependent(), "pair-dependence was checked at start");
                assert_eq!(model.dim(), thread_shards.dim(), "model dim vs shard dim");
                run(model, thread_shards, rx, cfg.max_batch.max(1), corpus, cache);
            })
            .expect("spawn tmn-serve engine thread");
        Ok(ServeEngine { handle: ServeHandle { tx, shards }, join: Some(join) })
    }

    pub fn handle(&self) -> ServeHandle {
        self.handle.clone()
    }

    pub fn shards(&self) -> &Arc<ShardSet> {
        &self.handle.shards
    }

    /// Stop the engine thread and wait for it to exit.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if let Some(join) = self.join.take() {
            let _ = self.handle.tx.send(Req::Shutdown);
            let _ = join.join();
        }
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The engine loop. Runs on the engine thread, which is the only place the
/// model (and therefore any tensor) exists. `corpus`/`cache` arrive empty
/// from [`ServeEngine::start`] and prefilled from
/// [`ServeEngine::start_warm`]; the loop treats both identically.
fn run(
    model: Box<dyn PairModel>,
    shards: Arc<ShardSet>,
    rx: mpsc::Receiver<Req>,
    max_batch: usize,
    mut corpus: HashMap<u64, Trajectory>,
    mut cache: HashMap<u64, CacheEntry>,
) {
    loop {
        // Block for one request, then drain the admission window.
        let Ok(first) = rx.recv() else { return };
        let mut batch = vec![first];
        while batch.len() < max_batch {
            match rx.try_recv() {
                Ok(req) => batch.push(req),
                Err(_) => break,
            }
        }

        // One fused forward for every trajectory the batch needs embedded.
        let mut trajs: Vec<Trajectory> = Vec::new();
        for req in &batch {
            match req {
                Req::Insert { traj, .. } | Req::Query { traj, .. } => trajs.push(traj.clone()),
                Req::QueryBatch { trajs: ts, .. } => trajs.extend(ts.iter().cloned()),
                _ => {}
            }
        }
        let embeds = if trajs.is_empty() {
            Vec::new()
        } else {
            metrics::gauge_set(SERVE_BATCH_SIZE, trajs.len() as f64);
            embed(model.as_ref(), &trajs)
        };

        let mut cursor = 0usize;
        let mut shutdown = false;
        for req in batch {
            match req {
                Req::Insert { id, traj, reply } => {
                    let emb = &embeds[cursor];
                    cursor += 1;
                    let res = shards.insert(id, emb);
                    if res.is_ok() {
                        corpus.insert(id, traj);
                        // Re-inserts overwrite: explicit cache invalidation.
                        cache.insert(id, CacheEntry::new(emb.clone()));
                    }
                    let _ = reply.send(res);
                }
                Req::Delete { id, reply } => {
                    let res = shards.delete(id);
                    if let Ok(true) = res {
                        corpus.remove(&id);
                        cache.remove(&id);
                    }
                    let _ = reply.send(res);
                }
                Req::Query { traj: _, k, reply } => {
                    let emb = &embeds[cursor];
                    cursor += 1;
                    metrics::counter_add(SERVE_QUERIES_TOTAL, 1);
                    let _ = reply.send(shards.query(emb, k));
                }
                Req::QueryBatch { trajs: ts, k, reply } => {
                    let n = ts.len();
                    let res: Result<Vec<_>, ServeError> =
                        embeds[cursor..cursor + n].iter().map(|e| shards.query(e, k)).collect();
                    cursor += n;
                    metrics::counter_add(SERVE_QUERIES_TOTAL, n as u64);
                    let _ = reply.send(res);
                }
                Req::QueryId { id, k, reply } => {
                    let emb = match cached_embedding(&mut cache, &corpus, model.as_ref(), id) {
                        Ok(emb) => emb,
                        Err(e) => {
                            let _ = reply.send(Err(e));
                            continue;
                        }
                    };
                    metrics::counter_add(SERVE_QUERIES_TOTAL, 1);
                    let _ = reply.send(shards.query(&emb, k));
                }
                Req::Status { reply } => {
                    let shard_status = shards.status();
                    let degraded = shard_status.degraded_mode;
                    let _ = reply.send(Ok(EngineStatus {
                        model: model.name().to_string(),
                        dim: model.dim(),
                        corpus: corpus.len(),
                        cache_entries: cache.len(),
                        shards: shard_status,
                        degraded_mode: degraded,
                    }));
                }
                Req::CorruptCache { id, reply } => {
                    let hit = match cache.get_mut(&id) {
                        Some(entry) if !entry.vec.is_empty() => {
                            entry.vec[0] = f32::from_bits(entry.vec[0].to_bits() ^ 1);
                            true
                        }
                        _ => false,
                    };
                    let _ = reply.send(Ok(hit));
                }
                Req::Shutdown => shutdown = true,
            }
        }
        if shutdown {
            return;
        }
    }
}

/// Timed wrapper over the fused tape-free forward.
fn embed(model: &dyn PairModel, trajs: &[Trajectory]) -> Vec<Vec<f32>> {
    let t0 = Instant::now();
    let out = encode_all(model, trajs, trajs.len());
    metrics::observe_ns(tmn_eval::QUERY_EMBED_NS, t0.elapsed().as_nanos() as u64);
    out
}

/// Resolve the embedding for a corpus id: warm cache when the checksum
/// verifies, recompute (and repair the cache) when it does not.
fn cached_embedding(
    cache: &mut HashMap<u64, CacheEntry>,
    corpus: &HashMap<u64, Trajectory>,
    model: &dyn PairModel,
    id: u64,
) -> Result<Vec<f32>, ServeError> {
    match cache.get(&id) {
        Some(entry) if entry.valid() => {
            metrics::counter_add(SERVE_CACHE_HITS_TOTAL, 1);
            return Ok(entry.vec.clone());
        }
        Some(_) => metrics::counter_add(SERVE_CACHE_CORRUPT_TOTAL, 1),
        None => {}
    }
    let traj = corpus.get(&id).ok_or(ServeError::UnknownId(id))?;
    let emb = embed(model, std::slice::from_ref(traj)).remove(0);
    cache.insert(id, CacheEntry::new(emb.clone()));
    Ok(emb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmn_traj::Point;

    fn traj(seed: u64, len: usize) -> Trajectory {
        let pts = (0..len)
            .map(|i| {
                let h = tmn_index::splitmix64(seed * 131 + i as u64);
                Point {
                    lon: (h % 1000) as f64 / 1000.0,
                    lat: ((h >> 10) % 1000) as f64 / 1000.0,
                }
            })
            .collect();
        Trajectory::new(pts)
    }

    fn engine() -> ServeEngine {
        let cfg = ServeConfig {
            shard: ShardSetConfig { shards: 2, shortlist: 32, ..Default::default() },
            max_batch: 8,
        };
        ServeEngine::start(ModelKind::TmnNm, &ModelConfig { dim: 16, seed: 7 }, cfg).unwrap()
    }

    #[test]
    fn pair_dependent_model_is_rejected() {
        let err = ServeEngine::start(
            ModelKind::Tmn,
            &ModelConfig { dim: 16, seed: 7 },
            ServeConfig::default(),
        )
        .err()
        .expect("full TMN must be rejected");
        assert_eq!(err, ServeError::PairDependentModel("TMN"));
    }

    #[test]
    fn insert_query_roundtrip() {
        let engine = engine();
        let h = engine.handle();
        for id in 0..20u64 {
            h.insert(id, traj(id, 12)).unwrap();
        }
        // A corpus trajectory's own embedding is its nearest neighbour.
        let top = h.query(traj(5, 12), 3).unwrap();
        assert_eq!(top[0].0, 5);
        assert!(top[0].1 <= 1e-6, "self-distance {} not ~0", top[0].1);
        // By-id path agrees with the ad-hoc path.
        assert_eq!(h.query_id(5, 3).unwrap(), top);
        assert!(h.delete(5).unwrap());
        assert!(h.query(traj(5, 12), 20).unwrap().iter().all(|&(id, _)| id != 5));
        assert_eq!(h.query_id(5, 3), Err(ServeError::UnknownId(5)));
        engine.shutdown();
    }

    #[test]
    fn batched_queries_match_singles() {
        let engine = engine();
        let h = engine.handle();
        for id in 0..30u64 {
            h.insert(id, traj(id, 10)).unwrap();
        }
        let queries: Vec<Trajectory> = (0..6).map(|i| traj(100 + i, 10)).collect();
        let batched = h.query_batch(queries.clone(), 5).unwrap();
        for (q, b) in queries.into_iter().zip(batched) {
            // Embedding numerics may differ at the ULP level between batch
            // shapes; ranked ids must agree and distances stay within fp
            // noise of each other.
            let single = h.query(q, 5).unwrap();
            let ids = |r: &[(u64, f64)]| r.iter().map(|&(id, _)| id).collect::<Vec<_>>();
            assert_eq!(ids(&single), ids(&b), "batched ranking diverged from single");
            for (s, t) in single.iter().zip(&b) {
                assert!((s.1 - t.1).abs() < 1e-5, "distance drift {} vs {}", s.1, t.1);
            }
        }
    }

    #[test]
    fn status_reports_corpus_and_cache() {
        let engine = engine();
        let h = engine.handle();
        for id in 0..10u64 {
            h.insert(id, traj(id, 8)).unwrap();
        }
        h.delete(3).unwrap();
        let status = h.status().unwrap();
        assert_eq!(status.model, "TMN-NM");
        assert_eq!(status.dim, 16);
        assert_eq!(status.corpus, 9);
        assert_eq!(status.cache_entries, 9);
        assert_eq!(status.shards.live, 9);
        assert!(!status.degraded_mode);
        let json = status.to_json();
        assert!(json.contains("\"degraded_mode\":false"), "flag missing from {json}");
    }

    #[test]
    fn engine_down_after_shutdown() {
        let engine = engine();
        let h = engine.handle();
        h.insert(1, traj(1, 8)).unwrap();
        engine.shutdown();
        assert_eq!(h.delete(1), Err(ServeError::EngineDown));
    }
}
