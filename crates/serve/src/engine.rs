//! The request plane: one engine thread owning the model, corpus, and warm
//! embedding cache, fed by an admission queue.
//!
//! The models are built from `Rc`-based tensors and are deliberately
//! `!Send`, so the engine thread *builds* its own model from
//! (`ModelKind`, `ModelConfig`) rather than receiving one. Everything that
//! crosses the channel is plain data: trajectories in, `(id, distance)`
//! lists out.
//!
//! Admission batching: the loop blocks on one request, then drains whatever
//! else is already queued (up to `max_batch`). Every trajectory that needs
//! an embedding across the drained batch — inserts and ad-hoc queries alike
//! — goes through a *single* [`encode_all`] call, so the fused-RNN
//! `embed_nograd` forward amortizes over the whole admission window instead
//! of running once per request.

use crate::shard::{ShardSet, ShardSetConfig, ShardSetStatus};
use crate::{
    ServeError, APPEND_NS, SERVE_BATCH_SIZE, SERVE_CACHE_CORRUPT_TOTAL, SERVE_CACHE_HITS_TOTAL,
    SERVE_QUERIES_TOTAL, SERVE_QUEUE_DEPTH, SERVE_QUEUE_WAIT_NS, STREAM_APPENDS_TOTAL,
    STREAM_REINDEX_TOTAL,
};
use serde::Serialize;
use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;
use tmn_core::{ModelConfig, ModelKind, PairModel};
use tmn_eval::{encode_all, EmbeddingStore};
use tmn_store::CorpusFile;
use tmn_obs::metrics;
use tmn_obs::trace::{self, TraceCtx};
use tmn_traj::{Point, Trajectory};

/// Request-plane configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    pub shard: ShardSetConfig,
    /// Admission window: how many queued requests one engine iteration
    /// drains (and therefore how many embeddings one forward amortizes).
    pub max_batch: usize,
    /// Streaming re-index threshold: an appended point re-inserts the
    /// trajectory into the HNSW index only when its embedding moved at
    /// least this far (L2) from the currently *indexed* one. `0.0` (the
    /// default) re-indexes on every append. While an append is skipped the
    /// index and warm cache keep serving the last indexed embedding; the
    /// stream state itself is always exact.
    pub reembed_min_delta: f64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig { shard: ShardSetConfig::default(), max_batch: 32, reembed_min_delta: 0.0 }
    }
}

type Reply<T> = mpsc::Sender<Result<T, ServeError>>;

enum Req {
    Insert { id: u64, traj: Trajectory, reply: Reply<()> },
    Delete { id: u64, reply: Reply<bool> },
    Query { traj: Trajectory, k: usize, reply: Reply<Vec<(u64, f64)>> },
    QueryBatch { trajs: Vec<Trajectory>, k: usize, reply: Reply<Vec<Vec<(u64, f64)>>> },
    QueryId { id: u64, k: usize, reply: Reply<Vec<(u64, f64)>> },
    AppendPoint { id: u64, point: Point, reply: Reply<AppendOutcome> },
    QueryWindow { id: u64, last_k: usize, k: usize, reply: Reply<Vec<(u64, f64)>> },
    Status { reply: Reply<EngineStatus> },
    CorruptCache { id: u64, reply: Reply<bool> },
    Shutdown,
}

/// What actually crosses the admission queue: the request plus its trace
/// context and enqueue timestamp. The context is plain `Copy` data, so a
/// caller's trace survives the hop onto the engine thread; the timestamp
/// feeds the queue-wait histogram and span at drain time.
struct Envelope {
    ctx: TraceCtx,
    enq_ns: u64,
    req: Req,
}

/// What one [`ServeHandle::append_point`] did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppendOutcome {
    /// Points the trajectory holds after this append.
    pub len: usize,
    /// Whether the moved embedding was re-inserted into the index (false
    /// when the move stayed under `reembed_min_delta`).
    pub reindexed: bool,
    /// L2 distance between the new embedding and the previously indexed
    /// one (`inf` for a trajectory's first point).
    pub delta: f64,
}

/// A cached embedding plus the checksum taken when it was computed. The
/// checksum is verified on every read; a mismatch means the bytes rotted
/// (or a fault test flipped them) and the entry must not be served.
struct CacheEntry {
    vec: Vec<f32>,
    sum: u64,
}

impl CacheEntry {
    fn new(vec: Vec<f32>) -> CacheEntry {
        let sum = checksum(&vec);
        CacheEntry { vec, sum }
    }

    fn valid(&self) -> bool {
        checksum(&self.vec) == self.sum
    }
}

/// FNV-1a over the embedding's f32 bit patterns.
fn checksum(v: &[f32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for x in v {
        for b in x.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Point-in-time engine snapshot, JSON-serializable for scrapers.
#[derive(Debug, Clone, Serialize)]
pub struct EngineStatus {
    pub model: String,
    pub dim: usize,
    /// Trajectories retained for cache recovery.
    pub corpus: usize,
    /// Warm embeddings currently cached.
    pub cache_entries: usize,
    /// Live per-id streaming states (trajectories being appended to).
    pub streams: usize,
    pub shards: ShardSetStatus,
    /// True while any shard is fenced off; the engine is still serving,
    /// from the remaining shards.
    pub degraded_mode: bool,
}

impl EngineStatus {
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("EngineStatus is always serializable")
    }
}

/// Cheap clonable front door to the engine thread. Methods block until the
/// engine replies; any number of threads may hold handles.
#[derive(Clone)]
pub struct ServeHandle {
    tx: mpsc::Sender<Envelope>,
    shards: Arc<ShardSet>,
}

impl ServeHandle {
    /// Single choke point for every request: begins the request trace
    /// (inert when tracing is off), stamps the enqueue time, blocks for the
    /// reply, then finishes the trace — by which point every span the
    /// engine thread recorded for it is already in the global ring, so the
    /// flight recorder assembles a complete tree.
    fn call<T>(&self, name: &'static str, make: impl FnOnce(Reply<T>) -> Req) -> Result<T, ServeError> {
        let req_span = trace::request_begin(name);
        let (tx, rx) = mpsc::channel();
        let env = Envelope { ctx: req_span.ctx(), enq_ns: trace::now_ns(), req: make(tx) };
        self.tx.send(env).map_err(|_| ServeError::EngineDown)?;
        let res = rx.recv().map_err(|_| ServeError::EngineDown)?;
        req_span.finish();
        res
    }

    /// Insert (or re-insert) trajectory `id`. A re-insert replaces the
    /// stored embedding and invalidates the cached one.
    pub fn insert(&self, id: u64, traj: Trajectory) -> Result<(), ServeError> {
        self.call("serve.insert", |reply| Req::Insert { id, traj, reply })
    }

    /// Delete trajectory `id`; `Ok(false)` when it was not live.
    pub fn delete(&self, id: u64) -> Result<bool, ServeError> {
        self.call("serve.delete", |reply| Req::Delete { id, reply })
    }

    /// Top-`k` most similar corpus trajectories to an ad-hoc query
    /// trajectory, as `(id, embedding distance)` ascending.
    pub fn query(&self, traj: Trajectory, k: usize) -> Result<Vec<(u64, f64)>, ServeError> {
        self.call("serve.query", |reply| Req::Query { traj, k, reply })
    }

    /// Batched [`query`](ServeHandle::query): all embeddings computed in
    /// one forward.
    pub fn query_batch(
        &self,
        trajs: Vec<Trajectory>,
        k: usize,
    ) -> Result<Vec<Vec<(u64, f64)>>, ServeError> {
        self.call("serve.query_batch", |reply| Req::QueryBatch { trajs, k, reply })
    }

    /// Top-`k` for a trajectory already in the corpus, served from the warm
    /// embedding cache when its checksum verifies (recomputed via
    /// `embed_nograd` when it does not).
    pub fn query_id(&self, id: u64, k: usize) -> Result<Vec<(u64, f64)>, ServeError> {
        self.call("serve.query_id", |reply| Req::QueryId { id, k, reply })
    }

    /// Append one GPS point to trajectory `id`'s live stream. The embedding
    /// advances by one incremental model step (exact — bitwise equal to
    /// re-embedding the grown trajectory) and is re-inserted into the index
    /// unless it moved less than `reembed_min_delta` since the last
    /// re-index. Unknown ids start a fresh one-point trajectory; ids
    /// inserted whole (or warm-loaded) are resumed by replaying their
    /// stored points through the stream once.
    ///
    /// Fails with [`ServeError::DegradedShard`] — before any model work —
    /// when the id's shard is fenced off.
    pub fn append_point(&self, id: u64, point: Point) -> Result<AppendOutcome, ServeError> {
        self.call("serve.append", |reply| Req::AppendPoint { id, point, reply })
    }

    /// Top-`k` neighbours of the sliding window holding the last `last_k`
    /// points of corpus trajectory `id` (the whole trajectory when it is
    /// shorter). The window is embedded as a standalone trajectory.
    pub fn query_window(
        &self,
        id: u64,
        last_k: usize,
        k: usize,
    ) -> Result<Vec<(u64, f64)>, ServeError> {
        self.call("serve.query_window", |reply| Req::QueryWindow { id, last_k, k, reply })
    }

    pub fn status(&self) -> Result<EngineStatus, ServeError> {
        self.call("serve.status", |reply| Req::Status { reply })
    }

    /// Fault-injection hook: flip one bit of `id`'s cached embedding
    /// without touching its checksum. `Ok(false)` when nothing was cached.
    pub fn corrupt_cache(&self, id: u64) -> Result<bool, ServeError> {
        self.call("serve.corrupt_cache", |reply| Req::CorruptCache { id, reply })
    }

    /// Direct access to the vector-level data plane (bypasses the model;
    /// used by stress tests and by callers that precompute embeddings).
    pub fn shards(&self) -> &Arc<ShardSet> {
        &self.shards
    }
}

/// The serving engine: owns the worker thread. Dropping it (or calling
/// [`shutdown`](ServeEngine::shutdown)) stops the thread after the
/// in-flight admission batch drains.
pub struct ServeEngine {
    handle: ServeHandle,
    join: Option<JoinHandle<()>>,
}

impl ServeEngine {
    /// Spawn the engine thread for `kind`. Pair-dependent models (full TMN)
    /// are rejected up front: their representations depend on the paired
    /// candidate, so a precomputed vector index cannot serve them — use
    /// [`ModelKind::TmnNm`] (the paper's ablation keeps 99%+ of the
    /// quality) or any other independent-embedding model.
    pub fn start(
        kind: ModelKind,
        mcfg: &ModelConfig,
        cfg: ServeConfig,
    ) -> Result<ServeEngine, ServeError> {
        if kind == ModelKind::Tmn {
            return Err(ServeError::PairDependentModel(kind.name()));
        }
        let shards = Arc::new(ShardSet::new(mcfg.dim, cfg.shard.clone()));
        let (tx, rx) = mpsc::channel();
        let thread_shards = Arc::clone(&shards);
        let mcfg = *mcfg;
        let join = std::thread::Builder::new()
            .name("tmn-serve-engine".into())
            .spawn(move || {
                let model = kind.build(&mcfg);
                assert!(!model.is_pair_dependent(), "pair-dependence was checked at start");
                assert_eq!(model.dim(), thread_shards.dim(), "model dim vs shard dim");
                run(
                    model,
                    thread_shards,
                    rx,
                    cfg.max_batch.max(1),
                    cfg.reembed_min_delta,
                    HashMap::new(),
                    HashMap::new(),
                );
            })
            .expect("spawn tmn-serve engine thread");
        Ok(ServeEngine { handle: ServeHandle { tx, shards }, join: Some(join) })
    }

    /// [`start`](ServeEngine::start), but with trained weights: `params`
    /// is an encoded parameter buffer from
    /// [`tmn_core::checkpoint::save_params`] (typically a trained model's
    /// `params()`). Models are thread-local by design, so weights cross
    /// the thread boundary as bytes, not tensors; the buffer is validated
    /// against a scratch model here (shape, names, checksums) before the
    /// engine thread loads it into its own copy.
    pub fn start_with_params(
        kind: ModelKind,
        mcfg: &ModelConfig,
        cfg: ServeConfig,
        params: Vec<u8>,
    ) -> Result<ServeEngine, ServeError> {
        if kind == ModelKind::Tmn {
            return Err(ServeError::PairDependentModel(kind.name()));
        }
        let scratch = kind.build(mcfg);
        tmn_core::checkpoint::load_params(scratch.params(), &params)
            .map_err(|e| ServeError::BadWeights(e.to_string()))?;
        let shards = Arc::new(ShardSet::new(mcfg.dim, cfg.shard.clone()));
        let (tx, rx) = mpsc::channel();
        let thread_shards = Arc::clone(&shards);
        let mcfg = *mcfg;
        let join = std::thread::Builder::new()
            .name("tmn-serve-engine".into())
            .spawn(move || {
                let model = kind.build(&mcfg);
                tmn_core::checkpoint::load_params(model.params(), &params)
                    .expect("weight buffer was validated before spawn");
                assert!(!model.is_pair_dependent(), "pair-dependence was checked at start");
                assert_eq!(model.dim(), thread_shards.dim(), "model dim vs shard dim");
                run(
                    model,
                    thread_shards,
                    rx,
                    cfg.max_batch.max(1),
                    cfg.reembed_min_delta,
                    HashMap::new(),
                    HashMap::new(),
                );
            })
            .expect("spawn tmn-serve engine thread");
        Ok(ServeEngine { handle: ServeHandle { tx, shards }, join: Some(join) })
    }

    /// [`start`](ServeEngine::start), but warm: the corpus trajectories and
    /// their embeddings come from the on-disk store (`tmn-store` files), so
    /// the engine begins life with every shard populated and every cache
    /// entry checksummed — no per-trajectory re-encoding, no cold queries.
    /// Row `i` of both files becomes external id `i`.
    ///
    /// The embeddings must have been produced by the same model/weights the
    /// engine is being started with; the engine checks dimensions and
    /// counts, not provenance.
    pub fn start_warm(
        kind: ModelKind,
        mcfg: &ModelConfig,
        cfg: ServeConfig,
        corpus_file: &CorpusFile,
        embeddings: &EmbeddingStore,
    ) -> Result<ServeEngine, ServeError> {
        if kind == ModelKind::Tmn {
            return Err(ServeError::PairDependentModel(kind.name()));
        }
        if embeddings.dim() != mcfg.dim {
            return Err(ServeError::DimMismatch { expected: mcfg.dim, got: embeddings.dim() });
        }
        assert_eq!(
            corpus_file.len(),
            embeddings.len(),
            "corpus and embedding stores must have one row per trajectory"
        );
        let shards = Arc::new(ShardSet::new(mcfg.dim, cfg.shard.clone()));
        shards.warm_load(embeddings)?;
        let view = corpus_file.view();
        let mut corpus: HashMap<u64, Trajectory> = HashMap::with_capacity(corpus_file.len());
        let mut cache: HashMap<u64, CacheEntry> = HashMap::with_capacity(corpus_file.len());
        for i in 0..corpus_file.len() {
            corpus.insert(i as u64, view.get(i));
            cache.insert(i as u64, CacheEntry::new(embeddings.get(i).to_vec()));
        }
        let (tx, rx) = mpsc::channel();
        let thread_shards = Arc::clone(&shards);
        let mcfg = *mcfg;
        let join = std::thread::Builder::new()
            .name("tmn-serve-engine".into())
            .spawn(move || {
                let model = kind.build(&mcfg);
                assert!(!model.is_pair_dependent(), "pair-dependence was checked at start");
                assert_eq!(model.dim(), thread_shards.dim(), "model dim vs shard dim");
                run(
                    model,
                    thread_shards,
                    rx,
                    cfg.max_batch.max(1),
                    cfg.reembed_min_delta,
                    corpus,
                    cache,
                );
            })
            .expect("spawn tmn-serve engine thread");
        Ok(ServeEngine { handle: ServeHandle { tx, shards }, join: Some(join) })
    }

    pub fn handle(&self) -> ServeHandle {
        self.handle.clone()
    }

    pub fn shards(&self) -> &Arc<ShardSet> {
        &self.handle.shards
    }

    /// Stop the engine thread and wait for it to exit.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if let Some(join) = self.join.take() {
            let _ = self.handle.tx.send(Envelope {
                ctx: TraceCtx::disabled(),
                enq_ns: trace::now_ns(),
                req: Req::Shutdown,
            });
            let _ = join.join();
        }
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The engine loop. Runs on the engine thread, which is the only place the
/// model (and therefore any tensor) exists. `corpus`/`cache` arrive empty
/// from [`ServeEngine::start`] and prefilled from
/// [`ServeEngine::start_warm`]; the loop treats both identically.
fn run(
    model: Box<dyn PairModel>,
    shards: Arc<ShardSet>,
    rx: mpsc::Receiver<Envelope>,
    max_batch: usize,
    reembed_min_delta: f64,
    mut corpus: HashMap<u64, Trajectory>,
    mut cache: HashMap<u64, CacheEntry>,
) {
    // Live per-id stream states — the resumable model side of the warm
    // cache (which holds the *indexed* embedding for the same id).
    let mut streams: HashMap<u64, tmn_core::models::ModelStream> = HashMap::new();
    let mut batch_id: u64 = 0;
    loop {
        // Block for one request, then drain the admission window.
        let Ok(first) = rx.recv() else { return };
        let mut batch = vec![first];
        while batch.len() < max_batch {
            match rx.try_recv() {
                Ok(env) => batch.push(env),
                Err(_) => break,
            }
        }

        // Queue accounting at the drain boundary: depth is how many
        // requests this admission window swallowed, wait is per-request
        // enqueue→drain time. Each traced request gets a queue-wait span
        // whose interval was measured here (start = its enqueue stamp).
        batch_id = batch_id.wrapping_add(1);
        let drained_ns = trace::now_ns();
        metrics::gauge_set(SERVE_QUEUE_DEPTH, batch.len() as f64);
        for env in &batch {
            let wait = drained_ns.saturating_sub(env.enq_ns);
            metrics::observe_ns_traced(SERVE_QUEUE_WAIT_NS, wait, env.ctx.trace_id());
            trace::record_span(
                env.ctx,
                "serve.queue_wait",
                env.enq_ns,
                wait,
                &[("batch_id", batch_id), ("batch_size", batch.len() as u64)],
            );
        }

        // One fused forward for every trajectory the batch needs embedded.
        // Inserts routed to a degraded shard are refused later without an
        // embed slot: checking here keeps the fused forward from spending
        // work on a write that cannot be applied.
        let mut trajs: Vec<Trajectory> = Vec::new();
        let mut skip_insert = vec![false; batch.len()];
        // Trajectories request i contributed to the fused forward (> 0 ⇒
        // this request's latency includes the shared embed).
        let mut contributed = vec![0usize; batch.len()];
        for (i, env) in batch.iter().enumerate() {
            match &env.req {
                Req::Insert { id, traj, .. } => {
                    if shards.is_degraded(shards.shard_of(*id)) {
                        skip_insert[i] = true;
                    } else {
                        trajs.push(traj.clone());
                        contributed[i] = 1;
                    }
                }
                Req::Query { traj, .. } => {
                    trajs.push(traj.clone());
                    contributed[i] = 1;
                }
                Req::QueryBatch { trajs: ts, .. } => {
                    trajs.extend(ts.iter().cloned());
                    contributed[i] = ts.len();
                }
                _ => {}
            }
        }
        let embeds = if trajs.is_empty() {
            Vec::new()
        } else {
            metrics::gauge_set(SERVE_BATCH_SIZE, trajs.len() as f64);
            // The forward is shared; attribute its exemplar to the first
            // traced requester, then give *every* contributing traced
            // request a span covering the same interval — each request's
            // tree shows the full embed cost it waited on.
            let embed_ctx = batch
                .iter()
                .enumerate()
                .find(|(i, env)| contributed[*i] > 0 && env.ctx.is_active())
                .map(|(_, env)| env.ctx)
                .unwrap_or_default();
            let t0 = trace::now_ns();
            let out = {
                let _ambient = trace::attach(embed_ctx);
                embed(model.as_ref(), &trajs)
            };
            let dur = trace::now_ns().saturating_sub(t0);
            for (i, env) in batch.iter().enumerate() {
                if contributed[i] > 0 {
                    trace::record_span(
                        env.ctx,
                        "serve.embed",
                        t0,
                        dur,
                        &[
                            ("batch_id", batch_id),
                            ("embed_batch", trajs.len() as u64),
                            ("trajs", contributed[i] as u64),
                        ],
                    );
                }
            }
            out
        };

        let mut cursor = 0usize;
        let mut shutdown = false;
        for (i, env) in batch.into_iter().enumerate() {
            let Envelope { ctx, req, .. } = env;
            // Everything dispatched below (shard search spans, rerank,
            // merge, stream steps, traced metric observations) lands under
            // this request's trace via the thread-local ambient context.
            let _ambient = trace::attach(ctx);
            match req {
                Req::Insert { id, traj, reply } => {
                    if skip_insert[i] {
                        let _ = reply.send(Err(ServeError::DegradedShard(shards.shard_of(id))));
                        continue;
                    }
                    let emb = &embeds[cursor];
                    cursor += 1;
                    let res = shards.insert(id, emb);
                    if res.is_ok() {
                        corpus.insert(id, traj);
                        // Re-inserts overwrite: explicit cache invalidation.
                        cache.insert(id, CacheEntry::new(emb.clone()));
                        // The whole trajectory replaced whatever was
                        // streamed; the next append re-seeds from the corpus.
                        streams.remove(&id);
                    }
                    let _ = reply.send(res);
                }
                Req::Delete { id, reply } => {
                    let res = shards.delete(id);
                    if let Ok(true) = res {
                        corpus.remove(&id);
                        cache.remove(&id);
                        streams.remove(&id);
                    }
                    let _ = reply.send(res);
                }
                Req::Query { traj: _, k, reply } => {
                    let emb = &embeds[cursor];
                    cursor += 1;
                    metrics::counter_add(SERVE_QUERIES_TOTAL, 1);
                    let _ = reply.send(shards.query(emb, k));
                }
                Req::QueryBatch { trajs: ts, k, reply } => {
                    let n = ts.len();
                    let res: Result<Vec<_>, ServeError> =
                        embeds[cursor..cursor + n].iter().map(|e| shards.query(e, k)).collect();
                    cursor += n;
                    metrics::counter_add(SERVE_QUERIES_TOTAL, n as u64);
                    let _ = reply.send(res);
                }
                Req::QueryId { id, k, reply } => {
                    let emb = match cached_embedding(&mut cache, &corpus, model.as_ref(), id) {
                        Ok(emb) => emb,
                        Err(e) => {
                            let _ = reply.send(Err(e));
                            continue;
                        }
                    };
                    metrics::counter_add(SERVE_QUERIES_TOTAL, 1);
                    let _ = reply.send(shards.query(&emb, k));
                }
                Req::AppendPoint { id, point, reply } => {
                    let t0 = Instant::now();
                    let shard = shards.shard_of(id);
                    // Degraded check before any model work: a refused
                    // append consumes nothing, so the caller can retry the
                    // same point once the shard is unfenced.
                    if shards.is_degraded(shard) {
                        let _ = reply.send(Err(ServeError::DegradedShard(shard)));
                        continue;
                    }
                    let emb = {
                        let _step = trace::span("stream.step");
                        let stream = match streams.entry(id) {
                            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                            std::collections::hash_map::Entry::Vacant(slot) => {
                                let Some(mut s) = model.stream_begin() else {
                                    let _ =
                                        reply.send(Err(ServeError::NoStreamPath(model.name())));
                                    continue;
                                };
                                // Resume an id inserted whole (or warm-loaded):
                                // replay its stored points through the stream,
                                // once, O(len).
                                if let Some(existing) = corpus.get(&id) {
                                    for &p in existing.points() {
                                        model.embed_incremental(&mut s, p);
                                    }
                                }
                                slot.insert(s)
                            }
                        };
                        model.embed_incremental(stream, point)
                    };
                    let entry = corpus.entry(id).or_default();
                    entry.push(point);
                    let len = entry.len();
                    let delta = {
                        let _delta = trace::span("stream.delta");
                        match cache.get(&id) {
                            Some(indexed) => l2(&emb, &indexed.vec),
                            None => f64::INFINITY, // first point always indexes
                        }
                    };
                    let res = if delta >= reembed_min_delta {
                        let _reindex = trace::span("stream.reindex");
                        // Re-insert = tombstone the old vector + insert the
                        // new one; cache mirrors whatever the index holds.
                        match shards.insert(id, &emb) {
                            Ok(()) => {
                                cache.insert(id, CacheEntry::new(emb));
                                metrics::counter_add(STREAM_REINDEX_TOTAL, 1);
                                Ok(AppendOutcome { len, reindexed: true, delta })
                            }
                            // Lost a race with a concurrent fault: the point
                            // is consumed (the stream cannot step back) but
                            // the index keeps the previous embedding.
                            Err(e) => Err(e),
                        }
                    } else {
                        Ok(AppendOutcome { len, reindexed: false, delta })
                    };
                    metrics::counter_add(STREAM_APPENDS_TOTAL, 1);
                    metrics::observe_ns_traced(
                        APPEND_NS,
                        t0.elapsed().as_nanos() as u64,
                        trace::current_trace(),
                    );
                    let _ = reply.send(res);
                }
                Req::QueryWindow { id, last_k, k, reply } => {
                    // Resolved at dispatch (not admission) time so appends
                    // earlier in the same batch are already visible.
                    let res = match corpus.get(&id) {
                        None => Err(ServeError::UnknownId(id)),
                        Some(traj) => {
                            let window = traj.last_window(last_k.max(1));
                            let emb = {
                                let _embed = trace::span("serve.embed");
                                embed(model.as_ref(), std::slice::from_ref(&window)).remove(0)
                            };
                            metrics::counter_add(SERVE_QUERIES_TOTAL, 1);
                            shards.query(&emb, k)
                        }
                    };
                    let _ = reply.send(res);
                }
                Req::Status { reply } => {
                    let shard_status = shards.status();
                    let degraded = shard_status.degraded_mode;
                    let _ = reply.send(Ok(EngineStatus {
                        model: model.name().to_string(),
                        dim: model.dim(),
                        corpus: corpus.len(),
                        cache_entries: cache.len(),
                        streams: streams.len(),
                        shards: shard_status,
                        degraded_mode: degraded,
                    }));
                }
                Req::CorruptCache { id, reply } => {
                    let hit = match cache.get_mut(&id) {
                        Some(entry) if !entry.vec.is_empty() => {
                            entry.vec[0] = f32::from_bits(entry.vec[0].to_bits() ^ 1);
                            true
                        }
                        _ => false,
                    };
                    let _ = reply.send(Ok(hit));
                }
                Req::Shutdown => shutdown = true,
            }
        }
        if shutdown {
            return;
        }
    }
}

/// L2 distance between two embeddings (f64 accumulation).
fn l2(a: &[f32], b: &[f32]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = (*x - *y) as f64;
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

/// Timed wrapper over the fused tape-free forward. The observation carries
/// the ambient trace id, so the `query_embed_ns` exemplar points at
/// whichever traced request paid for the slowest-bucket forward.
fn embed(model: &dyn PairModel, trajs: &[Trajectory]) -> Vec<Vec<f32>> {
    let t0 = Instant::now();
    let out = encode_all(model, trajs, trajs.len());
    metrics::observe_ns_traced(
        tmn_eval::QUERY_EMBED_NS,
        t0.elapsed().as_nanos() as u64,
        trace::current_trace(),
    );
    out
}

/// Resolve the embedding for a corpus id: warm cache when the checksum
/// verifies, recompute (and repair the cache) when it does not.
fn cached_embedding(
    cache: &mut HashMap<u64, CacheEntry>,
    corpus: &HashMap<u64, Trajectory>,
    model: &dyn PairModel,
    id: u64,
) -> Result<Vec<f32>, ServeError> {
    match cache.get(&id) {
        Some(entry) if entry.valid() => {
            metrics::counter_add(SERVE_CACHE_HITS_TOTAL, 1);
            return Ok(entry.vec.clone());
        }
        Some(_) => metrics::counter_add(SERVE_CACHE_CORRUPT_TOTAL, 1),
        None => {}
    }
    let traj = corpus.get(&id).ok_or(ServeError::UnknownId(id))?;
    let emb = {
        let _embed = trace::span("serve.embed");
        embed(model, std::slice::from_ref(traj)).remove(0)
    };
    cache.insert(id, CacheEntry::new(emb.clone()));
    Ok(emb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmn_traj::Point;

    fn traj(seed: u64, len: usize) -> Trajectory {
        let pts = (0..len)
            .map(|i| {
                let h = tmn_index::splitmix64(seed * 131 + i as u64);
                Point {
                    lon: (h % 1000) as f64 / 1000.0,
                    lat: ((h >> 10) % 1000) as f64 / 1000.0,
                }
            })
            .collect();
        Trajectory::new(pts)
    }

    fn engine() -> ServeEngine {
        let cfg = ServeConfig {
            shard: ShardSetConfig { shards: 2, shortlist: 32, ..Default::default() },
            max_batch: 8,
            ..Default::default()
        };
        ServeEngine::start(ModelKind::TmnNm, &ModelConfig { dim: 16, seed: 7 }, cfg).unwrap()
    }

    #[test]
    fn pair_dependent_model_is_rejected() {
        let err = ServeEngine::start(
            ModelKind::Tmn,
            &ModelConfig { dim: 16, seed: 7 },
            ServeConfig::default(),
        )
        .err()
        .expect("full TMN must be rejected");
        assert_eq!(err, ServeError::PairDependentModel("TMN"));
    }

    #[test]
    fn insert_query_roundtrip() {
        let engine = engine();
        let h = engine.handle();
        for id in 0..20u64 {
            h.insert(id, traj(id, 12)).unwrap();
        }
        // A corpus trajectory's own embedding is its nearest neighbour.
        let top = h.query(traj(5, 12), 3).unwrap();
        assert_eq!(top[0].0, 5);
        assert!(top[0].1 <= 1e-6, "self-distance {} not ~0", top[0].1);
        // By-id path agrees with the ad-hoc path.
        assert_eq!(h.query_id(5, 3).unwrap(), top);
        assert!(h.delete(5).unwrap());
        assert!(h.query(traj(5, 12), 20).unwrap().iter().all(|&(id, _)| id != 5));
        assert_eq!(h.query_id(5, 3), Err(ServeError::UnknownId(5)));
        engine.shutdown();
    }

    #[test]
    fn batched_queries_match_singles() {
        let engine = engine();
        let h = engine.handle();
        for id in 0..30u64 {
            h.insert(id, traj(id, 10)).unwrap();
        }
        let queries: Vec<Trajectory> = (0..6).map(|i| traj(100 + i, 10)).collect();
        let batched = h.query_batch(queries.clone(), 5).unwrap();
        for (q, b) in queries.into_iter().zip(batched) {
            // Embedding numerics may differ at the ULP level between batch
            // shapes; ranked ids must agree and distances stay within fp
            // noise of each other.
            let single = h.query(q, 5).unwrap();
            let ids = |r: &[(u64, f64)]| r.iter().map(|&(id, _)| id).collect::<Vec<_>>();
            assert_eq!(ids(&single), ids(&b), "batched ranking diverged from single");
            for (s, t) in single.iter().zip(&b) {
                assert!((s.1 - t.1).abs() < 1e-5, "distance drift {} vs {}", s.1, t.1);
            }
        }
    }

    #[test]
    fn status_reports_corpus_and_cache() {
        let engine = engine();
        let h = engine.handle();
        for id in 0..10u64 {
            h.insert(id, traj(id, 8)).unwrap();
        }
        h.delete(3).unwrap();
        let status = h.status().unwrap();
        assert_eq!(status.model, "TMN-NM");
        assert_eq!(status.dim, 16);
        assert_eq!(status.corpus, 9);
        assert_eq!(status.cache_entries, 9);
        assert_eq!(status.shards.live, 9);
        assert!(!status.degraded_mode);
        let json = status.to_json();
        assert!(json.contains("\"degraded_mode\":false"), "flag missing from {json}");
    }

    #[test]
    fn append_point_matches_whole_insert_bitwise() {
        // Stream id 1 point-by-point; insert the identical trajectory whole
        // as id 2. Sequential blocking calls keep every admission batch at
        // size 1, so both ids embed at bs = 1 and the indexed vectors must
        // be bitwise equal — the engine-level face of the stream oracle.
        let engine = engine();
        let h = engine.handle();
        let t = traj(77, 9);
        for (i, &p) in t.points().iter().enumerate() {
            let out = h.append_point(1, p).unwrap();
            assert_eq!(out.len, i + 1);
            assert!(out.reindexed, "default config re-indexes every append");
        }
        h.insert(2, t).unwrap();
        let (v1, v2) = (engine.shards().get_vec(1).unwrap(), engine.shards().get_vec(2).unwrap());
        assert_eq!(v1, v2, "streamed index entry diverged from whole-trajectory insert");
        // The streamed id serves queries like any other corpus entry.
        assert_eq!(h.query_id(1, 2).unwrap()[0].0, 1);
        assert_eq!(h.status().unwrap().streams, 1);
        engine.shutdown();
    }

    #[test]
    fn append_resumes_a_whole_inserted_trajectory() {
        let engine = engine();
        let h = engine.handle();
        let t = traj(31, 7);
        h.insert(4, t.clone()).unwrap();
        let p = Point { lon: 0.42, lat: 0.17 };
        let out = h.append_point(4, p).unwrap();
        assert_eq!(out.len, 8, "append must see the 7 stored points");
        // Reference: the grown trajectory inserted whole under another id.
        let mut grown = t;
        grown.push(p);
        h.insert(5, grown).unwrap();
        assert_eq!(engine.shards().get_vec(4).unwrap(), engine.shards().get_vec(5).unwrap());
        engine.shutdown();
    }

    #[test]
    fn reembed_min_delta_skips_index_churn() {
        let cfg = ServeConfig {
            shard: ShardSetConfig { shards: 2, shortlist: 32, ..Default::default() },
            max_batch: 8,
            reembed_min_delta: f64::MAX,
        };
        let engine =
            ServeEngine::start(ModelKind::TmnNm, &ModelConfig { dim: 16, seed: 7 }, cfg).unwrap();
        let h = engine.handle();
        let t = traj(12, 6);
        let first = h.append_point(9, t.points()[0]).unwrap();
        assert!(first.reindexed, "a trajectory's first point must always index");
        assert!(first.delta.is_infinite());
        let indexed = engine.shards().get_vec(9).unwrap();
        for &p in &t.points()[1..] {
            let out = h.append_point(9, p).unwrap();
            assert!(!out.reindexed, "delta {} cannot clear f64::MAX", out.delta);
            assert!(out.delta.is_finite());
        }
        // The index (and the cache feeding query_id) still hold the first
        // point's embedding: skipped appends cause zero churn.
        assert_eq!(engine.shards().get_vec(9).unwrap(), indexed);
        assert_eq!(h.status().unwrap().corpus, 1);
        engine.shutdown();
    }

    #[test]
    fn query_window_embeds_the_last_points() {
        let engine = engine();
        let h = engine.handle();
        for id in 0..15u64 {
            h.insert(id, traj(id, 10)).unwrap();
        }
        let t = traj(50, 12);
        for &p in t.points() {
            h.append_point(50, p).unwrap();
        }
        // The window query must rank exactly like an ad-hoc query over the
        // same suffix (both embed at bs = 1 → bitwise-equal embeddings).
        let window = t.last_window(4);
        assert_eq!(h.query_window(50, 4, 5).unwrap(), h.query(window, 5).unwrap());
        // Window larger than the trajectory = the whole trajectory.
        assert_eq!(h.query_window(50, 99, 5).unwrap(), h.query(t, 5).unwrap());
        assert_eq!(h.query_window(777, 4, 5), Err(ServeError::UnknownId(777)));
        engine.shutdown();
    }

    #[test]
    fn degraded_shard_refuses_writes_before_embedding() {
        // Regression: inserts used to burn an embed slot even when the
        // target shard was fenced off. The empty trajectory is the tripwire
        // — embedding it panics in SideBatch::build, so if the engine
        // survives and answers DegradedShard, no embedding was attempted.
        let engine = engine();
        let h = engine.handle();
        let victim = engine.shards().shard_of(3);
        // A corpus id on the OTHER shard, so reads stay answerable.
        let healthy = (0..64u64).find(|&id| engine.shards().shard_of(id) != victim).unwrap();
        h.insert(healthy, traj(healthy, 8)).unwrap();
        engine.shards().fault_poison(victim);
        assert_eq!(h.insert(3, Trajectory::default()), Err(ServeError::DegradedShard(victim)));
        // Appends check the shard before any model work too: no stream
        // state may be created for a refused append.
        let streams_before = h.status().unwrap().streams;
        assert_eq!(
            h.append_point(3, Point { lon: 0.1, lat: 0.2 }),
            Err(ServeError::DegradedShard(victim))
        );
        assert_eq!(h.status().unwrap().streams, streams_before);
        // The engine thread is alive and healthy shards keep serving.
        assert!(!h.query(traj(healthy, 8), 1).unwrap().is_empty());
        engine.shutdown();
    }

    #[test]
    fn engine_down_after_shutdown() {
        let engine = engine();
        let h = engine.handle();
        h.insert(1, traj(1, 8)).unwrap();
        engine.shutdown();
        assert_eq!(h.delete(1), Err(ServeError::EngineDown));
    }
}
