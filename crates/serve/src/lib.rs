//! # tmn-serve
//!
//! A long-lived serving engine over the learned trajectory embeddings: the
//! paper (§I) positions TMN behind an HNSW index for top-k retrieval, and
//! this crate is that index run as a *service* — millions of trajectories
//! under live traffic, with new trajectories arriving and old ones retiring
//! while queries keep flowing.
//!
//! Two layers:
//!
//! - [`ShardSet`] — the concurrent data plane. One incremental HNSW shard
//!   per core behind an `RwLock`, a stable id→shard router
//!   ([`tmn_index::ShardRouter`]), scatter-gather top-k merge with exact
//!   f32 rerank, per-shard epochs, tombstone compaction, and degraded mode:
//!   a shard whose lock is poisoned by a panicking writer is fenced off and
//!   the engine keeps serving from the remaining shards. `ShardSet` is
//!   `Sync`; readers and writers hit it from any thread.
//! - [`ServeEngine`] / [`ServeHandle`] — the request plane. Models are
//!   thread-local (`Rc`-based tensors), so one engine thread owns the model
//!   plus the trajectory corpus and the warm embedding cache, and drains an
//!   admission queue in batches: every trajectory embedding in one drained
//!   batch amortizes into a single fused-RNN [`embed_nograd`] forward.
//!   Handles are cheap clones; any thread can insert, delete, and query.
//!
//! The cache stores a checksum next to each embedding; a corrupt entry is
//! detected on read and silently recomputed from the corpus instead of
//! being served. Request-path latencies land in the PR 5 histograms
//! (`query_embed_ns` / `query_index_ns` / `query_rank_ns`, plus
//! `serve_queue_wait_ns` for enqueue→drain delay), and the engine exports
//! `serve_batch_size`, `serve_queue_depth`, `shard_imbalance` and
//! `serve_degraded_shards` gauges through the Prometheus/JSON exporters.
//!
//! With `tmn_obs::trace` enabled, every request additionally records a span
//! tree — queue wait, shared embed, per-shard knn, rerank, merge (and
//! stream step / delta / re-index on the append path) — into the flight
//! recorder, and each latency histogram's exemplar names the trace behind
//! its most recent high-bucket observation. Tracing is off by default and
//! bitwise-invariant on results either way
//! (`crates/serve/tests/trace_invariance.rs`).
//!
//! [`embed_nograd`]: tmn_core::PairModel::embed_nograd

mod engine;
mod shard;

pub use engine::{AppendOutcome, EngineStatus, ServeConfig, ServeEngine, ServeHandle};
pub use shard::{ShardSet, ShardSetConfig, ShardSetStatus, ShardStatus};

/// Gauge: trajectories embedded by the last admission batch (the fan-in the
/// fused forward amortized over).
pub const SERVE_BATCH_SIZE: &str = "serve_batch_size";
/// Gauge: requests drained by the last admission window — how deep the
/// queue had grown while the previous batch was being served.
pub const SERVE_QUEUE_DEPTH: &str = "serve_queue_depth";
/// Histogram: per-request time between enqueue and admission-window drain,
/// in nanoseconds. This is the queueing delay that used to fold silently
/// into client-observed latency.
pub const SERVE_QUEUE_WAIT_NS: &str = "serve_queue_wait_ns";
/// Gauge: max/mean shard occupancy (1.0 = perfectly balanced).
pub const SHARD_IMBALANCE: &str = "shard_imbalance";
/// Gauge: shards currently fenced off after a poisoned lock.
pub const SERVE_DEGRADED_SHARDS: &str = "serve_degraded_shards";
/// Counter: queries answered by the engine (single + batched + by-id).
pub const SERVE_QUERIES_TOTAL: &str = "serve_queries_total";
/// Counter: inserts applied (including re-inserts of a live id).
pub const SERVE_INSERTS_TOTAL: &str = "serve_inserts_total";
/// Counter: deletes that removed a live id.
pub const SERVE_DELETES_TOTAL: &str = "serve_deletes_total";
/// Counter: by-id queries served straight from the warm cache.
pub const SERVE_CACHE_HITS_TOTAL: &str = "serve_cache_hits_total";
/// Counter: cache entries whose checksum failed; each was recomputed via
/// `embed_nograd` instead of served.
pub const SERVE_CACHE_CORRUPT_TOTAL: &str = "serve_cache_corrupt_total";
/// Counter: shard compactions (tombstone-triggered rebuilds).
pub const SERVE_COMPACTIONS_TOTAL: &str = "serve_compactions_total";
/// Counter: points appended to live trajectory streams.
pub const STREAM_APPENDS_TOTAL: &str = "stream_appends_total";
/// Counter: appends whose moved embedding was re-inserted into the index
/// (the rest fell under `reembed_min_delta` and skipped the churn).
pub const STREAM_REINDEX_TOTAL: &str = "stream_reindex_total";
/// Histogram: wall time of one `append_point` (stream step + optional
/// re-index), in nanoseconds.
pub const APPEND_NS: &str = "append_ns";

/// Errors surfaced by the serving engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Vector/query dimensionality does not match the engine's model.
    DimMismatch { expected: usize, got: usize },
    /// The shard owning this id is fenced off (poisoned lock); writes to it
    /// are refused while reads keep flowing from the healthy shards.
    DegradedShard(usize),
    /// By-id operation on an id the corpus has never seen (or has deleted).
    UnknownId(u64),
    /// The engine only serves independent-embedding models; pair-dependent
    /// models (full TMN) re-encode per candidate and cannot sit behind a
    /// vector index.
    PairDependentModel(&'static str),
    /// The model cannot embed trajectories point-by-point (no
    /// `stream_begin` path), so `append_point` is unavailable.
    NoStreamPath(&'static str),
    /// An encoded weight buffer handed to `start_with_params` failed to
    /// load into the requested model (wrong shapes, names, or corruption).
    BadWeights(String),
    /// The engine thread is gone (shut down or crashed).
    EngineDown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::DimMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            ServeError::DegradedShard(s) => write!(f, "shard {s} is degraded (poisoned lock)"),
            ServeError::UnknownId(id) => write!(f, "unknown trajectory id {id}"),
            ServeError::PairDependentModel(name) => {
                write!(f, "{name} is pair-dependent and cannot serve from a vector index")
            }
            ServeError::NoStreamPath(name) => {
                write!(f, "{name} cannot embed incrementally; append_point is unavailable")
            }
            ServeError::BadWeights(why) => write!(f, "weight buffer rejected: {why}"),
            ServeError::EngineDown => write!(f, "serving engine is not running"),
        }
    }
}

impl std::error::Error for ServeError {}
