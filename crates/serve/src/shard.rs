//! The concurrent data plane: per-core HNSW shards behind `RwLock`s.
//!
//! Locking choice: RwLock-per-shard rather than epoch-based snapshots.
//! Queries take read locks (many concurrent readers per shard), mutations
//! take the one shard's write lock — so a write stalls only the readers of
//! that shard, 1/N of traffic, and never blocks the scatter-gather on the
//! other shards. Every mutation bumps the shard's epoch; a reader observes
//! one epoch for the whole critical section (verified by the concurrency
//! stress suite), which is exactly the consistency the merge needs: each
//! per-shard shortlist is a snapshot, and the merged top-k is a pure
//! function of those snapshots.
//!
//! A panic inside a write critical section poisons that shard's lock. The
//! set detects the poison on the next access, fences the shard off
//! (degraded mode: reads skip it, writes to it are refused with
//! [`ServeError::DegradedShard`]) and keeps serving from the rest.

use crate::{
    ServeError, SERVE_COMPACTIONS_TOTAL, SERVE_DEGRADED_SHARDS, SERVE_DELETES_TOTAL,
    SERVE_INSERTS_TOTAL, SHARD_IMBALANCE,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Instant;
use tmn_eval::embedding_distance;
use tmn_index::{Hnsw, HnswConfig, ShardRouter};
use tmn_obs::metrics;
use tmn_obs::trace;

/// Data-plane configuration.
#[derive(Debug, Clone)]
pub struct ShardSetConfig {
    /// Shard count; defaults to the host's available parallelism.
    pub shards: usize,
    pub hnsw: HnswConfig,
    /// Store int8-quantized vectors inside the shards (the exact f32 copy
    /// kept for reranking makes top-k quality identical either way).
    pub quantized: bool,
    /// Per-shard shortlist (beam width); candidates are exact-reranked.
    pub shortlist: usize,
    /// Rebuild a shard once tombstones exceed this fraction of its nodes.
    pub compact_ratio: f64,
    /// Never compact shards smaller than this (churn on tiny shards is
    /// cheaper to tolerate than to rebuild).
    pub compact_min: usize,
    /// Seed for the per-shard level-draw RNGs (shard s uses `seed + s`).
    pub seed: u64,
}

impl Default for ShardSetConfig {
    fn default() -> ShardSetConfig {
        ShardSetConfig {
            shards: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            hnsw: HnswConfig::default(),
            quantized: false,
            shortlist: 64,
            compact_ratio: 0.35,
            compact_min: 64,
            seed: 0x5EED_5EED,
        }
    }
}

/// One shard's guarded state.
struct ShardInner {
    hnsw: Hnsw,
    /// Internal HNSW id → external trajectory id (aligned with insertion).
    ext_of_int: Vec<u64>,
    /// External id → its *current* internal id.
    int_of_ext: HashMap<u64, usize>,
    /// Exact f32 embeddings for rerank, rebuilds, and oracle scans.
    vecs: HashMap<u64, Vec<f32>>,
    /// Bumped on every mutation; constant across a read critical section.
    epoch: u64,
    rng: StdRng,
}

impl ShardInner {
    fn new(dim: usize, cfg: &ShardSetConfig, seed: u64) -> ShardInner {
        ShardInner {
            hnsw: new_hnsw(dim, cfg),
            ext_of_int: Vec::new(),
            int_of_ext: HashMap::new(),
            vecs: HashMap::new(),
            epoch: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Graph walk only: the approximate shortlist as internal ids. Split
    /// from [`rerank`](ShardInner::rerank) so the two stages are separately
    /// attributable (each gets its own trace span under the scatter-gather).
    fn shortlist_ints(&self, q: &[f32], shortlist: usize) -> Vec<usize> {
        self.hnsw.knn_ef(q, shortlist, shortlist).into_iter().map(|(int, _)| int).collect()
    }

    /// Exact-f32 rerank of a shortlist. Returns exact-distance candidates,
    /// unsorted.
    fn rerank(&self, q: &[f32], ints: &[usize]) -> Vec<(u64, f64)> {
        ints.iter()
            .filter_map(|&int| {
                let ext = self.ext_of_int[int];
                // A tombstoned int never surfaces, so `ext` maps back to
                // `int` unless the maps were corrupted — keep the check as
                // defence in depth against serving a stale embedding.
                if self.int_of_ext.get(&ext) != Some(&int) {
                    return None;
                }
                Some((ext, embedding_distance(q, &self.vecs[&ext])))
            })
            .collect()
    }

    /// Rebuild the HNSW from the live vectors (drops every tombstone).
    /// Deterministic: ids are re-inserted in ascending external order.
    fn compact(&mut self, dim: usize, cfg: &ShardSetConfig) {
        let mut ids: Vec<u64> = self.vecs.keys().copied().collect();
        ids.sort_unstable();
        let mut hnsw = new_hnsw(dim, cfg);
        let mut ext_of_int = Vec::with_capacity(ids.len());
        let mut int_of_ext = HashMap::with_capacity(ids.len());
        for &id in &ids {
            let int = hnsw.insert(&self.vecs[&id], &mut self.rng);
            ext_of_int.push(id);
            int_of_ext.insert(id, int);
        }
        self.hnsw = hnsw;
        self.ext_of_int = ext_of_int;
        self.int_of_ext = int_of_ext;
        self.epoch += 1;
        metrics::counter_add(SERVE_COMPACTIONS_TOTAL, 1);
    }
}

fn new_hnsw(dim: usize, cfg: &ShardSetConfig) -> Hnsw {
    if cfg.quantized {
        Hnsw::new_quantized(dim, cfg.hnsw)
    } else {
        Hnsw::new(dim, cfg.hnsw)
    }
}

/// Merge exact-distance candidates into one ascending top-`k`;
/// deterministic (distance then id) regardless of shard arrival order.
fn merge_topk64(mut candidates: Vec<(u64, f64)>, k: usize) -> Vec<(u64, f64)> {
    candidates.sort_by(|a, b| {
        a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
    });
    candidates.truncate(k);
    candidates
}

/// Status of one shard at snapshot time.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ShardStatus {
    pub shard: usize,
    pub live: usize,
    pub tombstones: usize,
    pub epoch: u64,
    pub degraded: bool,
}

/// Status of the whole set; `degraded_mode` is true while any shard is
/// fenced off.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ShardSetStatus {
    pub shards: Vec<ShardStatus>,
    pub live: usize,
    pub tombstones: usize,
    pub degraded_mode: bool,
    /// max/mean live occupancy over healthy shards (1.0 = balanced).
    pub shard_imbalance: f64,
}

/// Epochs one query observed on one shard: captured right after the read
/// lock was granted and again before it was released. The concurrency
/// suite asserts `start == end` — the lock discipline's visible invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochObservation {
    pub shard: usize,
    pub start: u64,
    pub end: u64,
}

/// Sharded incremental vector index: the `Sync` core of the serving engine.
pub struct ShardSet {
    cfg: ShardSetConfig,
    dim: usize,
    router: ShardRouter,
    shards: Vec<RwLock<ShardInner>>,
    degraded: Vec<AtomicBool>,
}

impl ShardSet {
    pub fn new(dim: usize, cfg: ShardSetConfig) -> ShardSet {
        assert!(dim > 0, "ShardSet: dimension must be positive");
        let shards = cfg.shards.max(1);
        let router = ShardRouter::new(shards);
        let inners = (0..shards)
            .map(|s| RwLock::new(ShardInner::new(dim, &cfg, cfg.seed.wrapping_add(s as u64))))
            .collect();
        let degraded = (0..shards).map(|_| AtomicBool::new(false)).collect();
        ShardSet { cfg, dim, router, shards: inners, degraded }
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    pub fn router(&self) -> ShardRouter {
        self.router
    }

    /// Which shard owns `id` (stable across the set's lifetime).
    pub fn shard_of(&self, id: u64) -> usize {
        self.router.shard_of(id)
    }

    fn mark_degraded(&self, s: usize) {
        if !self.degraded[s].swap(true, Ordering::SeqCst) {
            let n = self.degraded.iter().filter(|d| d.load(Ordering::SeqCst)).count();
            metrics::gauge_set(SERVE_DEGRADED_SHARDS, n as f64);
        }
    }

    /// Whether shard `s` is fenced off.
    pub fn is_degraded(&self, s: usize) -> bool {
        self.degraded[s].load(Ordering::SeqCst)
    }

    fn read_shard(&self, s: usize) -> Option<RwLockReadGuard<'_, ShardInner>> {
        if self.degraded[s].load(Ordering::SeqCst) {
            return None;
        }
        match self.shards[s].read() {
            Ok(g) => Some(g),
            Err(_) => {
                self.mark_degraded(s);
                None
            }
        }
    }

    fn write_shard(&self, s: usize) -> Option<RwLockWriteGuard<'_, ShardInner>> {
        if self.degraded[s].load(Ordering::SeqCst) {
            return None;
        }
        match self.shards[s].write() {
            Ok(g) => Some(g),
            Err(_) => {
                self.mark_degraded(s);
                None
            }
        }
    }

    /// Insert (or replace) the embedding for external id `id`. A re-insert
    /// tombstones the previous vector first, so the id is never duplicated.
    /// Triggers a shard compaction when tombstones pass the configured
    /// ratio.
    pub fn insert(&self, id: u64, v: &[f32]) -> Result<(), ServeError> {
        if v.len() != self.dim {
            return Err(ServeError::DimMismatch { expected: self.dim, got: v.len() });
        }
        let s = self.shard_of(id);
        let mut guard = self.write_shard(s).ok_or(ServeError::DegradedShard(s))?;
        let inner = &mut *guard;
        if let Some(&old) = inner.int_of_ext.get(&id) {
            inner.hnsw.remove(old);
        }
        let int = inner.hnsw.insert(v, &mut inner.rng);
        debug_assert_eq!(int, inner.ext_of_int.len());
        inner.ext_of_int.push(id);
        inner.int_of_ext.insert(id, int);
        inner.vecs.insert(id, v.to_vec());
        inner.epoch += 1;
        metrics::counter_add(SERVE_INSERTS_TOTAL, 1);
        let (len, tomb) = (inner.hnsw.len(), inner.hnsw.tombstones());
        if len >= self.cfg.compact_min && (tomb as f64) > self.cfg.compact_ratio * len as f64 {
            inner.compact(self.dim, &self.cfg);
        }
        Ok(())
    }

    /// Bulk-load a fresh set from an embedding store: row `i` becomes
    /// external id `i`. Each shard is pre-sized for exactly the rows the
    /// router sends it, then filled through the normal insert path (same
    /// epochs, same metrics) — so a warm-started set is indistinguishable
    /// from one that ingested the rows over the wire.
    pub fn warm_load(&self, store: &tmn_eval::EmbeddingStore) -> Result<(), ServeError> {
        if store.dim() != self.dim {
            return Err(ServeError::DimMismatch { expected: self.dim, got: store.dim() });
        }
        let mut per_shard = vec![0usize; self.shards.len()];
        for i in 0..store.len() {
            per_shard[self.shard_of(i as u64)] += 1;
        }
        for (s, &count) in per_shard.iter().enumerate() {
            if count > 0 {
                let mut inner = self.write_shard(s).ok_or(ServeError::DegradedShard(s))?;
                inner.hnsw.reserve(count);
                inner.ext_of_int.reserve(count);
                inner.int_of_ext.reserve(count);
                inner.vecs.reserve(count);
            }
        }
        for i in 0..store.len() {
            self.insert(i as u64, store.get(i))?;
        }
        Ok(())
    }

    /// Delete external id `id`. `Ok(false)` when the id was not live.
    pub fn delete(&self, id: u64) -> Result<bool, ServeError> {
        let s = self.shard_of(id);
        let mut inner = self.write_shard(s).ok_or(ServeError::DegradedShard(s))?;
        let Some(int) = inner.int_of_ext.remove(&id) else {
            return Ok(false);
        };
        inner.hnsw.remove(int);
        inner.vecs.remove(&id);
        inner.epoch += 1;
        metrics::counter_add(SERVE_DELETES_TOTAL, 1);
        Ok(true)
    }

    /// Whether `id` is live (false for degraded shards).
    pub fn contains(&self, id: u64) -> bool {
        let s = self.shard_of(id);
        self.read_shard(s).map(|g| g.int_of_ext.contains_key(&id)).unwrap_or(false)
    }

    /// The exact stored embedding for `id`, if live.
    pub fn get_vec(&self, id: u64) -> Option<Vec<f32>> {
        let s = self.shard_of(id);
        self.read_shard(s).and_then(|g| g.vecs.get(&id).cloned())
    }

    /// Approximate top-`k` with exact rerank, scatter-gathered across every
    /// healthy shard. Degraded shards are skipped — the engine keeps
    /// answering from the rest (that is what the degraded flag reports).
    pub fn query(&self, q: &[f32], k: usize) -> Result<Vec<(u64, f64)>, ServeError> {
        Ok(self.query_with_epochs(q, k)?.0)
    }

    /// [`query`](ShardSet::query) plus the epoch each shard was observed
    /// at; the stress suite asserts every observation is internally
    /// consistent (`start == end`).
    #[allow(clippy::type_complexity)]
    pub fn query_with_epochs(
        &self,
        q: &[f32],
        k: usize,
    ) -> Result<(Vec<(u64, f64)>, Vec<EpochObservation>), ServeError> {
        if q.len() != self.dim {
            return Err(ServeError::DimMismatch { expected: self.dim, got: q.len() });
        }
        let shortlist = self.cfg.shortlist.max(k);
        let mut candidates = Vec::new();
        let mut epochs = Vec::with_capacity(self.shards.len());
        let mut index_ns = 0u64;
        let t_rank = Instant::now();
        // Per-shard knn and rerank each get their own span under the
        // scatter-gather; the serve.search span groups them and the final
        // merge in the request's trace. `index_ns` (the query_index_ns
        // histogram) keeps its historical meaning: knn + rerank together,
        // i.e. everything spent inside shard read critical sections.
        let search_span = trace::span("serve.search").attr("shards", self.shards.len() as u64);
        for s in 0..self.shards.len() {
            let Some(inner) = self.read_shard(s) else { continue };
            let start = inner.epoch;
            let t0 = Instant::now();
            let ints = {
                let _knn = trace::span("shard.knn").attr("shard", s as u64);
                inner.shortlist_ints(q, shortlist)
            };
            let mut shard_hits = {
                let _rerank =
                    trace::span("shard.rerank").attr("shard", s as u64).attr(
                        "shortlist",
                        ints.len() as u64,
                    );
                inner.rerank(q, &ints)
            };
            index_ns += t0.elapsed().as_nanos() as u64;
            candidates.append(&mut shard_hits);
            epochs.push(EpochObservation { shard: s, start, end: inner.epoch });
        }
        let merged = {
            let _merge = trace::span("serve.merge").attr("candidates", candidates.len() as u64);
            merge_topk64(candidates, k)
        };
        drop(search_span);
        let total_ns = t_rank.elapsed().as_nanos() as u64;
        let trace_id = trace::current_trace();
        metrics::observe_ns_traced(tmn_eval::QUERY_INDEX_NS, index_ns, trace_id);
        metrics::observe_ns_traced(
            tmn_eval::QUERY_RANK_NS,
            total_ns.saturating_sub(index_ns),
            trace_id,
        );
        Ok((merged, epochs))
    }

    /// Exact top-`k` by brute-force scan over every healthy shard's live
    /// vectors. Bitwise-identical to the oracle a test computes from the
    /// same live set — the anchor the approximate path is judged against,
    /// and a correct (if slow) fallback regardless of graph state.
    pub fn query_exact(&self, q: &[f32], k: usize) -> Result<Vec<(u64, f64)>, ServeError> {
        if q.len() != self.dim {
            return Err(ServeError::DimMismatch { expected: self.dim, got: q.len() });
        }
        let mut candidates = Vec::new();
        for s in 0..self.shards.len() {
            let Some(inner) = self.read_shard(s) else { continue };
            candidates
                .extend(inner.vecs.iter().map(|(&id, v)| (id, embedding_distance(q, v))));
        }
        Ok(merge_topk64(candidates, k))
    }

    /// Force-compact one shard (rebuild from live vectors, dropping every
    /// tombstone). Queries on other shards proceed concurrently; queries on
    /// this shard briefly block on the write lock — the
    /// "query-during-rebuild" fault test drives exactly that interleaving.
    pub fn compact_shard(&self, s: usize) -> Result<(), ServeError> {
        let mut inner = self.write_shard(s).ok_or(ServeError::DegradedShard(s))?;
        inner.compact(self.dim, &self.cfg);
        Ok(())
    }

    /// Total live vectors across healthy shards.
    pub fn live(&self) -> usize {
        (0..self.shards.len())
            .filter_map(|s| self.read_shard(s).map(|g| g.hnsw.live_len()))
            .sum()
    }

    /// Snapshot per-shard status and refresh the `shard_imbalance` /
    /// `serve_degraded_shards` gauges.
    pub fn status(&self) -> ShardSetStatus {
        let mut shards = Vec::with_capacity(self.shards.len());
        for s in 0..self.shards.len() {
            match self.read_shard(s) {
                Some(inner) => shards.push(ShardStatus {
                    shard: s,
                    live: inner.hnsw.live_len(),
                    tombstones: inner.hnsw.tombstones(),
                    epoch: inner.epoch,
                    degraded: false,
                }),
                None => shards.push(ShardStatus {
                    shard: s,
                    live: 0,
                    tombstones: 0,
                    epoch: 0,
                    degraded: true,
                }),
            }
        }
        let healthy: Vec<&ShardStatus> = shards.iter().filter(|s| !s.degraded).collect();
        let live: usize = healthy.iter().map(|s| s.live).sum();
        let tombstones: usize = healthy.iter().map(|s| s.tombstones).sum();
        let degraded = shards.len() - healthy.len();
        let imbalance = if healthy.is_empty() || live == 0 {
            1.0
        } else {
            let max = healthy.iter().map(|s| s.live).max().unwrap_or(0) as f64;
            max / (live as f64 / healthy.len() as f64)
        };
        metrics::gauge_set(SHARD_IMBALANCE, imbalance);
        metrics::gauge_set(SERVE_DEGRADED_SHARDS, degraded as f64);
        ShardSetStatus {
            shards,
            live,
            tombstones,
            degraded_mode: degraded > 0,
            shard_imbalance: imbalance,
        }
    }

    /// Fault-injection hook: poison shard `s`'s lock the way a crashed
    /// writer would — by panicking inside the write critical section. Used
    /// by the fault suite and the `serve_smoke` CI bin; after this, the
    /// set runs in degraded mode until rebuilt.
    pub fn fault_poison(&self, s: usize) {
        let lock = &self.shards[s];
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = lock.write();
            panic!("injected shard fault");
        }));
        // Detection is lazy (next lock attempt); force it now so status()
        // immediately reflects reality.
        let _ = self.read_shard(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec_for(id: u64, dim: usize) -> Vec<f32> {
        (0..dim)
            .map(|d| (tmn_index::splitmix64(id * 31 + d as u64) % 1000) as f32 / 1000.0)
            .collect()
    }

    fn small_set(n: u64, shards: usize) -> ShardSet {
        let cfg = ShardSetConfig { shards, shortlist: 32, ..Default::default() };
        let set = ShardSet::new(4, cfg);
        for id in 0..n {
            set.insert(id, &vec_for(id, 4)).unwrap();
        }
        set
    }

    #[test]
    fn insert_query_delete_lifecycle() {
        let set = small_set(40, 3);
        assert_eq!(set.live(), 40);
        let q = vec_for(7, 4);
        let top = set.query(&q, 5).unwrap();
        assert_eq!(top[0].0, 7, "own vector must be its own nearest neighbour");
        assert_eq!(top[0].1, 0.0);
        assert!(set.delete(7).unwrap());
        assert!(!set.delete(7).unwrap(), "second delete is a no-op");
        assert!(!set.contains(7));
        let top = set.query(&q, 5).unwrap();
        assert!(top.iter().all(|&(id, _)| id != 7), "deleted id resurfaced");
        assert_eq!(set.live(), 39);
    }

    #[test]
    fn reinsert_replaces_embedding() {
        let set = small_set(10, 2);
        let newv = vec![9.0f32, 9.0, 9.0, 9.0];
        set.insert(3, &newv).unwrap();
        assert_eq!(set.get_vec(3).unwrap(), newv);
        assert_eq!(set.live(), 10, "re-insert must not duplicate the id");
        let top = set.query(&newv, 1).unwrap();
        assert_eq!(top[0], (3, 0.0));
    }

    #[test]
    fn exact_query_merges_across_shards_bitwise() {
        let set = small_set(60, 4);
        let q = vec_for(999, 4);
        // Oracle over the same live vectors, computed independently.
        let mut oracle: Vec<(u64, f64)> = (0..60)
            .map(|id| (id, embedding_distance(&q, &vec_for(id, 4))))
            .collect();
        oracle.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        oracle.truncate(10);
        assert_eq!(set.query_exact(&q, 10).unwrap(), oracle);
    }

    #[test]
    fn dim_mismatch_is_rejected() {
        let set = small_set(5, 2);
        assert_eq!(
            set.insert(99, &[1.0, 2.0]),
            Err(ServeError::DimMismatch { expected: 4, got: 2 })
        );
        assert_eq!(
            set.query(&[1.0], 3),
            Err(ServeError::DimMismatch { expected: 4, got: 1 })
        );
    }

    #[test]
    fn compaction_drops_tombstones() {
        let cfg = ShardSetConfig {
            shards: 1,
            compact_min: 8,
            compact_ratio: 0.25,
            ..Default::default()
        };
        let set = ShardSet::new(4, cfg);
        for id in 0..32 {
            set.insert(id, &vec_for(id, 4)).unwrap();
        }
        for id in 0..16 {
            set.delete(id).unwrap();
        }
        // Next insert crosses the ratio and rebuilds the shard.
        set.insert(100, &vec_for(100, 4)).unwrap();
        let status = set.status();
        assert_eq!(status.tombstones, 0, "compaction must drop tombstones");
        assert_eq!(status.live, 17);
        let q = vec_for(20, 4);
        assert_eq!(set.query(&q, 1).unwrap()[0].0, 20, "live ids survive the rebuild");
    }

    #[test]
    fn epochs_advance_on_mutation_and_hold_during_reads() {
        let set = small_set(12, 2);
        let q = vec_for(3, 4);
        let (_, epochs) = set.query_with_epochs(&q, 3).unwrap();
        for obs in &epochs {
            assert_eq!(obs.start, obs.end, "epoch changed inside a read critical section");
        }
        let before: u64 = epochs.iter().map(|e| e.start).sum();
        set.insert(50, &vec_for(50, 4)).unwrap();
        let (_, after) = set.query_with_epochs(&q, 3).unwrap();
        assert!(after.iter().map(|e| e.start).sum::<u64>() > before);
    }
}
