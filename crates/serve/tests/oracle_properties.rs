//! Property tests: random insert/delete/re-insert/flush interleavings
//! against a brute-force oracle.
//!
//! The reference model is a plain `HashMap<id, vec>` mutated by the same
//! interleaving. After every interleaving:
//!
//! - `query_exact` must equal the oracle **bitwise** — same ids, same f64
//!   distances, same (distance, id) order — because both are exact scans
//!   over the same live f32 vectors.
//! - the approximate sharded path (HNSW shortlist + exact rerank +
//!   scatter-gather merge) must reach HR@10 within 0.5% of the oracle,
//!   aggregated across the case's queries — for both f32 and int8 shards.
//!
//! Flush (= forced shard compaction) is part of the op alphabet, so the
//! graph is exercised immediately after tombstones are dropped, too.

use proptest::prelude::*;
use std::collections::HashMap;
use tmn_eval::embedding_distance;
use tmn_index::splitmix64;
use tmn_serve::{ShardSet, ShardSetConfig};

const DIM: usize = 6;

/// Deterministic embedding for (id, version): re-inserts get a fresh
/// vector, so a stale embedding surviving a replace is detectable.
fn vec_for(id: u64, version: u64) -> Vec<f32> {
    (0..DIM)
        .map(|d| (splitmix64(id * 1315423911 + version * 2654435761 + d as u64) % 1000) as f32 / 1000.0)
        .collect()
}

fn query_vec(qi: u64) -> Vec<f32> {
    (0..DIM).map(|d| (splitmix64(qi * 97 + d as u64 * 13 + 5) % 1000) as f32 / 1000.0).collect()
}

/// Exact top-k on the reference state, with the engine's tie-break
/// (distance ascending, then id ascending).
fn oracle_topk(reference: &HashMap<u64, Vec<f32>>, q: &[f32], k: usize) -> Vec<(u64, f64)> {
    let mut all: Vec<(u64, f64)> =
        reference.iter().map(|(&id, v)| (id, embedding_distance(q, v))).collect();
    all.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
    all.truncate(k);
    all
}

/// Interpret one op byte: 0-5 insert, 6-7 delete, 8 re-insert (bump
/// version), 9 flush every shard. Ids live in a small space so deletes and
/// re-inserts actually collide with earlier inserts.
fn apply_ops(
    set: &ShardSet,
    reference: &mut HashMap<u64, Vec<f32>>,
    versions: &mut HashMap<u64, u64>,
    ops: &[(u8, u64)],
) {
    for &(op, id) in ops {
        match op % 10 {
            0..=5 => {
                let ver = *versions.entry(id).or_insert(0);
                let v = vec_for(id, ver);
                set.insert(id, &v).unwrap();
                reference.insert(id, v);
            }
            6 | 7 => {
                let was_live = set.delete(id).unwrap();
                assert_eq!(was_live, reference.remove(&id).is_some(), "delete({id}) liveness");
            }
            8 => {
                let ver = versions.entry(id).or_insert(0);
                *ver += 1;
                let v = vec_for(id, *ver);
                set.insert(id, &v).unwrap();
                reference.insert(id, v);
            }
            _ => {
                for s in 0..set.shards() {
                    set.compact_shard(s).unwrap();
                }
            }
        }
    }
}

fn run_case(quantized: bool, shards: usize, ops: &[(u8, u64)]) -> Result<(), String> {
    let cfg = ShardSetConfig {
        shards,
        shortlist: 64,
        quantized,
        ..Default::default()
    };
    let set = ShardSet::new(DIM, cfg);
    let mut reference: HashMap<u64, Vec<f32>> = HashMap::new();
    let mut versions: HashMap<u64, u64> = HashMap::new();
    apply_ops(&set, &mut reference, &mut versions, ops);

    prop_assert_eq!(set.live(), reference.len(), "live count diverged from the oracle state");

    let k = 10usize.min(reference.len());
    let mut hits = 0usize;
    let mut total = 0usize;
    for qi in 0..20u64 {
        let q = query_vec(qi);
        let oracle = oracle_topk(&reference, &q, k);

        // Exact path: bitwise-identical to the oracle, always.
        let exact = set.query_exact(&q, k).unwrap();
        prop_assert_eq!(&exact, &oracle, "query_exact diverged bitwise on query {}", qi);

        // Approximate path: distances of returned ids are exact (rerank is
        // full-precision even on int8 shards), recall gated below.
        let approx = set.query(&q, k).unwrap();
        for &(id, d) in &approx {
            let want = embedding_distance(&q, &reference[&id]);
            prop_assert_eq!(d, want, "approx returned non-exact distance for id {}", id);
        }
        let approx_ids: Vec<u64> = approx.iter().map(|&(id, _)| id).collect();
        hits += oracle.iter().filter(|&&(id, _)| approx_ids.contains(&id)).count();
        total += oracle.len();
    }
    if total > 0 {
        let hr = hits as f64 / total as f64;
        prop_assert!(hr >= 0.995, "HR@10 {hr:.4} breaches the 0.5% gate (quantized={quantized})");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn sharded_topk_tracks_oracle_under_interleavings(
        ops in prop::collection::vec((0u8..10, 0u64..48), 1..160),
        shards in 1usize..4,
    ) {
        run_case(false, shards, &ops)?;
    }

    #[test]
    fn int8_sharded_topk_tracks_oracle_under_interleavings(
        ops in prop::collection::vec((0u8..10, 0u64..48), 1..160),
        shards in 1usize..4,
    ) {
        run_case(true, shards, &ops)?;
    }

    #[test]
    fn flush_preserves_results_bitwise(
        ops in prop::collection::vec((0u8..9, 0u64..32), 1..80),
    ) {
        // Same interleaving with and without a trailing flush: compaction
        // rebuilds the graphs but must not change what the exact path (or
        // the live set) contains.
        let cfg = || ShardSetConfig { shards: 2, shortlist: 64, ..Default::default() };
        let plain = ShardSet::new(DIM, cfg());
        let flushed = ShardSet::new(DIM, cfg());
        let (mut r1, mut v1) = (HashMap::new(), HashMap::new());
        let (mut r2, mut v2) = (HashMap::new(), HashMap::new());
        apply_ops(&plain, &mut r1, &mut v1, &ops);
        apply_ops(&flushed, &mut r2, &mut v2, &ops);
        for s in 0..flushed.shards() {
            flushed.compact_shard(s).unwrap();
        }
        prop_assert_eq!(flushed.live(), plain.live());
        let status = flushed.status();
        prop_assert_eq!(status.tombstones, 0, "flush left tombstones behind");
        for qi in 0..8u64 {
            let q = query_vec(qi);
            prop_assert_eq!(
                plain.query_exact(&q, 10).unwrap(),
                flushed.query_exact(&q, 10).unwrap(),
                "flush changed exact results on query {}", qi
            );
        }
    }
}
