//! Seeded N-writer / M-reader stress: concurrent inserts, deletes and
//! queries against one `ShardSet`, then a full accounting.
//!
//! Invariants checked:
//!
//! - **no lost inserts** — every id a writer left live at the end is
//!   present, with exactly the vector of its final insert;
//! - **no resurrected deletes** — every id whose last op was a delete is
//!   absent, and never shows up in query results taken after the join;
//! - **consistent shard epochs** — a reader never observes an epoch change
//!   inside one read critical section, and per-shard epochs are monotone
//!   across its successive queries.
//!
//! Thread count is `available_parallelism().clamp(2, 4)` so the test stays
//! bounded on a 1-core container and under `cargo test -q`'s time budget
//! (the whole binary is a few seconds, well inside the 30 s ceiling).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use tmn_core::{ModelConfig, ModelKind};
use tmn_serve::{ServeConfig, ServeEngine, ShardSet, ShardSetConfig};
use tmn_traj::{Point, Trajectory};

const DIM: usize = 8;
const OPS_PER_WRITER: usize = 400;
/// Each writer owns ids `[w * RANGE, w * RANGE + SPAN)` — disjoint by
/// construction, so writers never contend on an id and the final state is
/// exactly the union of per-writer expectations.
const RANGE: u64 = 100_000;
const SPAN: u64 = 64;

fn vec_for(id: u64, version: u64) -> Vec<f32> {
    (0..DIM)
        .map(|d| (tmn_index::splitmix64(id * 31 + version * 977 + d as u64) % 1000) as f32 / 1000.0)
        .collect()
}

fn thread_budget() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).clamp(2, 4)
}

/// Writer w's deterministic op stream; returns (live id → final version,
/// ids whose last op was a delete).
fn writer_plan(w: u64, seed: u64) -> (HashMap<u64, u64>, Vec<u64>) {
    let mut rng = StdRng::seed_from_u64(seed ^ (w * 7919));
    let mut live: HashMap<u64, u64> = HashMap::new();
    let mut versions: HashMap<u64, u64> = HashMap::new();
    let mut plan = Vec::with_capacity(OPS_PER_WRITER);
    for _ in 0..OPS_PER_WRITER {
        let id = w * RANGE + rng.gen_range(0..SPAN);
        // 70% insert/re-insert, 30% delete.
        if rng.gen_range(0..10) < 7 {
            let ver = versions.entry(id).or_insert(0);
            *ver += 1;
            live.insert(id, *ver);
            plan.push((id, Some(*ver)));
        } else {
            live.remove(&id);
            plan.push((id, None));
        }
    }
    let deleted: Vec<u64> = plan
        .iter()
        .map(|&(id, _)| id)
        .filter(|id| !live.contains_key(id))
        .collect();
    (live, deleted)
}

/// Replay writer w's plan against the shared set. Reconstructs the same
/// stream from the same seed, so plan and execution cannot drift.
fn run_writer(set: &ShardSet, w: u64, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed ^ (w * 7919));
    let mut versions: HashMap<u64, u64> = HashMap::new();
    for _ in 0..OPS_PER_WRITER {
        let id = w * RANGE + rng.gen_range(0..SPAN);
        if rng.gen_range(0..10) < 7 {
            let ver = versions.entry(id).or_insert(0);
            *ver += 1;
            set.insert(id, &vec_for(id, *ver)).unwrap();
        } else {
            set.delete(id).unwrap();
        }
    }
}

#[test]
fn writers_and_readers_race_without_losing_state() {
    let seed = 0xC0FFEE_u64;
    let threads = thread_budget();
    let writers = (threads / 2).max(1);
    let readers = (threads - writers).max(1);

    let set = Arc::new(ShardSet::new(
        DIM,
        ShardSetConfig { shards: 3, shortlist: 48, ..Default::default() },
    ));
    let done = Arc::new(AtomicBool::new(false));

    let writer_handles: Vec<_> = (0..writers as u64)
        .map(|w| {
            let set = Arc::clone(&set);
            std::thread::spawn(move || run_writer(&set, w, seed))
        })
        .collect();

    let reader_handles: Vec<_> = (0..readers as u64)
        .map(|r| {
            let set = Arc::clone(&set);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ (r * 104729));
                let mut last_epoch: HashMap<usize, u64> = HashMap::new();
                let mut queries = 0usize;
                while !done.load(Ordering::Relaxed) {
                    let q: Vec<f32> = (0..DIM).map(|_| rng.gen_range(0.0..1.0)).collect();
                    let (hits, epochs) = set.query_with_epochs(&q, 10).unwrap();
                    for obs in &epochs {
                        assert_eq!(
                            obs.start, obs.end,
                            "reader {r}: epoch moved inside a read critical section"
                        );
                        let last = last_epoch.entry(obs.shard).or_insert(0);
                        assert!(
                            obs.start >= *last,
                            "reader {r}: shard {} epoch went backwards ({} < {})",
                            obs.shard, obs.start, last
                        );
                        *last = obs.start;
                    }
                    for &(id, d) in &hits {
                        assert!(
                            (id % RANGE) < SPAN,
                            "reader {r}: id {id} outside any writer's range"
                        );
                        assert!(d.is_finite() && d >= 0.0);
                    }
                    queries += 1;
                }
                queries
            })
        })
        .collect();

    for h in writer_handles {
        h.join().expect("writer panicked");
    }
    done.store(true, Ordering::Relaxed);
    let total_queries: usize =
        reader_handles.into_iter().map(|h| h.join().expect("reader panicked")).sum();
    assert!(total_queries > 0, "readers never ran against the writers");

    // Full accounting against the per-writer plans.
    let mut expected_live = 0usize;
    for w in 0..writers as u64 {
        let (live, deleted) = writer_plan(w, seed);
        expected_live += live.len();
        for (&id, &ver) in &live {
            assert!(set.contains(id), "lost insert: id {id} (writer {w})");
            assert_eq!(
                set.get_vec(id).as_deref(),
                Some(vec_for(id, ver).as_slice()),
                "id {id} holds a stale vector (lost re-insert)"
            );
        }
        for &id in &deleted {
            assert!(!set.contains(id), "resurrected delete: id {id} (writer {w})");
        }
    }
    assert_eq!(set.live(), expected_live, "live count diverged from the union of plans");

    // Deleted ids must not show up even via full-size exact queries.
    let (_, deleted0) = writer_plan(0, seed);
    if let Some(&probe) = deleted0.first() {
        let hits = set.query_exact(&vec_for(probe, 1), expected_live).unwrap();
        assert!(hits.iter().all(|&(id, _)| id != probe), "deleted id {probe} resurfaced");
        assert_eq!(hits.len(), expected_live, "exact scan missed live vectors");
    }
    assert!(!set.status().degraded_mode, "stress must not degrade any shard");
}

fn traj(seed: u64, len: usize) -> Trajectory {
    let pts = (0..len)
        .map(|i| {
            let h = tmn_index::splitmix64(seed * 131 + i as u64);
            Point::new((h % 1000) as f64 / 1000.0, ((h >> 10) % 1000) as f64 / 1000.0)
        })
        .collect();
    Trajectory::new(pts)
}

/// The same race through the request plane: multiple threads sharing
/// clonable handles, one engine thread amortizing their embeddings.
#[test]
fn concurrent_handles_agree_with_the_engine_corpus() {
    let engine = ServeEngine::start(
        ModelKind::TmnNm,
        &ModelConfig { dim: 16, seed: 11 },
        ServeConfig {
            shard: ShardSetConfig { shards: 2, shortlist: 32, ..Default::default() },
            max_batch: 16,
            ..Default::default()
        },
    )
    .unwrap();

    let writers = thread_budget().min(3);
    let per_writer = 30u64;
    let handles: Vec<_> = (0..writers as u64)
        .map(|w| {
            let h = engine.handle();
            std::thread::spawn(move || {
                let base = w * RANGE;
                for i in 0..per_writer {
                    h.insert(base + i, traj(base + i, 10)).unwrap();
                }
                // Delete every third id; the rest stay live.
                for i in (0..per_writer).step_by(3) {
                    assert!(h.delete(base + i).unwrap(), "delete lost its own insert");
                }
            })
        })
        .collect();

    // Reader races the writers through its own handle.
    let reader = engine.handle();
    for probe in 0..40u64 {
        let hits = reader.query(traj(probe, 10), 5).unwrap();
        for w in hits.windows(2) {
            assert!(w[0].1 <= w[1].1, "merged top-k out of order");
        }
    }
    for h in handles {
        h.join().expect("writer panicked");
    }

    let deleted_per_writer = per_writer.div_ceil(3);
    let expected = writers as u64 * (per_writer - deleted_per_writer);
    let status = engine.handle().status().unwrap();
    assert_eq!(status.corpus as u64, expected, "corpus diverged after the race");
    assert_eq!(status.shards.live as u64, expected, "index diverged after the race");
    // Spot-check: a surviving id answers by-id queries with itself on top.
    let survivor = RANGE + 1; // writer 1, id 1 — not divisible by 3.
    if writers > 1 {
        let top = engine.handle().query_id(survivor, 1).unwrap();
        assert_eq!(top[0].0, survivor);
    }
    engine.shutdown();
}
