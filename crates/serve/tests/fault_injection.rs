//! Fault injection: the engine must keep serving through the failures the
//! design claims to absorb.
//!
//! - a shard worker that panics inside its write critical section poisons
//!   that shard's lock → the shard is fenced off, queries keep answering
//!   from the healthy shards, and degraded mode is visible in both the
//!   JSON status and the Prometheus exposition;
//! - a corrupt cached embedding fails its checksum on read → it is *not*
//!   served; the engine recomputes it from the corpus via `embed_nograd`,
//!   repairs the cache, and bumps `serve_cache_corrupt_total`;
//! - queries racing a shard rebuild (compaction) see before-state or
//!   after-state, never garbage.
//!
//! The metrics registry is process-global and tests share one binary, so
//! every metrics-sensitive test takes a shared lock (same idiom as
//! `crates/eval/tests/serving_metrics.rs`).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use tmn_core::{ModelConfig, ModelKind};
use tmn_obs::{export, metrics};
use tmn_serve::{
    ServeConfig, ServeEngine, ServeError, ShardSet, ShardSetConfig, SERVE_CACHE_CORRUPT_TOTAL,
    SERVE_CACHE_HITS_TOTAL,
};
use tmn_traj::{Point, Trajectory};

fn test_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

const DIM: usize = 6;

fn vec_for(id: u64) -> Vec<f32> {
    (0..DIM)
        .map(|d| (tmn_index::splitmix64(id * 31 + d as u64) % 1000) as f32 / 1000.0)
        .collect()
}

fn traj(seed: u64, len: usize) -> Trajectory {
    let pts = (0..len)
        .map(|i| {
            let h = tmn_index::splitmix64(seed * 131 + i as u64);
            Point::new((h % 1000) as f64 / 1000.0, ((h >> 10) % 1000) as f64 / 1000.0)
        })
        .collect();
    Trajectory::new(pts)
}

fn populated_set(n: u64, shards: usize) -> ShardSet {
    let set = ShardSet::new(DIM, ShardSetConfig { shards, shortlist: 48, ..Default::default() });
    for id in 0..n {
        set.insert(id, &vec_for(id)).unwrap();
    }
    set
}

#[test]
fn panicking_shard_worker_leaves_the_engine_serving() {
    let set = populated_set(60, 3);
    let victim = 1usize;

    // A worker thread crashes mid-write: it takes the shard's write lock
    // and panics while holding it, exactly what `fault_poison` simulates.
    set.fault_poison(victim);

    // The shard is fenced; the rest of the engine is open for business.
    assert!(set.is_degraded(victim));
    let status = set.status();
    assert!(status.degraded_mode, "degraded mode not reported");
    assert!(status.shards[victim].degraded);
    assert_eq!(
        status.shards.iter().filter(|s| s.degraded).count(),
        1,
        "only the poisoned shard may be fenced"
    );

    // Queries keep flowing, returning every live id from healthy shards.
    let expected_live: Vec<u64> =
        (0..60).filter(|&id| set.shard_of(id) != victim).collect();
    assert_eq!(status.live, expected_live.len());
    let hits = set.query_exact(&vec_for(7), 60).unwrap();
    assert_eq!(hits.len(), expected_live.len());
    for &(id, _) in &hits {
        assert_ne!(set.shard_of(id), victim, "degraded shard served id {id}");
    }
    let approx = set.query(&vec_for(7), 10).unwrap();
    assert!(!approx.is_empty(), "approximate path went dark in degraded mode");

    // Writes routed to the dead shard are refused with a typed error;
    // writes to healthy shards succeed.
    let dead_id = (0..200).find(|&id| set.shard_of(id) == victim).unwrap();
    let live_id = (1000..1200).find(|&id| set.shard_of(id) != victim).unwrap();
    assert_eq!(set.insert(dead_id, &vec_for(dead_id)), Err(ServeError::DegradedShard(victim)));
    assert_eq!(set.delete(dead_id), Err(ServeError::DegradedShard(victim)));
    set.insert(live_id, &vec_for(live_id)).unwrap();
    assert!(set.contains(live_id));
}

#[test]
fn degraded_mode_is_visible_in_json_and_prometheus() {
    let _l = test_lock();
    metrics::set_enabled(true);
    metrics::reset();

    let engine = ServeEngine::start(
        ModelKind::TmnNm,
        &ModelConfig { dim: 16, seed: 3 },
        ServeConfig {
            shard: ShardSetConfig { shards: 3, shortlist: 32, ..Default::default() },
            max_batch: 8,
            ..Default::default()
        },
    )
    .unwrap();
    let h = engine.handle();
    for id in 0..30u64 {
        h.insert(id, traj(id, 8)).unwrap();
    }

    engine.shards().fault_poison(2);
    let status = h.status().unwrap();
    assert!(status.degraded_mode);
    let json = status.to_json();
    assert!(json.contains("\"degraded_mode\":true"), "JSON lacks the flag: {json}");

    // The gauge flows through the standard exporters with the tmn_ prefix.
    let snap = metrics::snapshot();
    metrics::reset();
    assert_eq!(snap.gauge("serve_degraded_shards"), Some(1.0));
    let text = export::to_prometheus(&snap);
    assert!(
        text.contains("tmn_serve_degraded_shards 1"),
        "Prometheus exposition lacks the degraded gauge:\n{text}"
    );
    assert!(text.contains("tmn_shard_imbalance"), "imbalance gauge missing:\n{text}");

    // Still serving: ad-hoc queries answer from the two healthy shards.
    let hits = h.query(traj(5, 8), 5).unwrap();
    assert!(!hits.is_empty());
    engine.shutdown();
}

#[test]
fn corrupt_cache_entry_is_detected_and_recomputed() {
    let _l = test_lock();
    metrics::set_enabled(true);
    metrics::reset();

    let engine = ServeEngine::start(
        ModelKind::TmnNm,
        &ModelConfig { dim: 16, seed: 5 },
        ServeConfig {
            shard: ShardSetConfig { shards: 2, shortlist: 32, ..Default::default() },
            max_batch: 8,
            ..Default::default()
        },
    )
    .unwrap();
    let h = engine.handle();
    for id in 0..20u64 {
        h.insert(id, traj(id, 10)).unwrap();
    }
    let clean = h.query_id(7, 5).unwrap();
    assert_eq!(clean[0].0, 7, "sanity: id 7 is its own nearest neighbour");

    // Flip one bit of the cached embedding behind the checksum's back.
    assert!(h.corrupt_cache(7).unwrap());
    let repaired = h.query_id(7, 5).unwrap();
    assert_eq!(repaired, clean, "corrupt cache entry leaked into results");

    // And the repair is durable: the next read is a clean cache hit.
    let snap_before = metrics::snapshot();
    assert_eq!(h.query_id(7, 5).unwrap(), clean);
    let snap = metrics::snapshot();
    metrics::reset();
    let corrupt = snap.counter(SERVE_CACHE_CORRUPT_TOTAL).unwrap_or(0);
    assert_eq!(corrupt, 1, "exactly one checksum failure expected");
    let hits_before = snap_before.counter(SERVE_CACHE_HITS_TOTAL).unwrap_or(0);
    let hits_after = snap.counter(SERVE_CACHE_HITS_TOTAL).unwrap_or(0);
    assert!(hits_after > hits_before, "repaired entry did not serve as a cache hit");
    engine.shutdown();
}

#[test]
fn queries_race_compaction_without_corruption() {
    let set = Arc::new(populated_set(80, 2));
    // Build up tombstones so compaction has real work to do.
    for id in (0..80).step_by(2) {
        set.delete(id).unwrap();
    }
    let live: Vec<u64> = (1..80).step_by(2).collect();

    let done = Arc::new(AtomicBool::new(false));
    let compactor = {
        let set = Arc::clone(&set);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut rounds = 0usize;
            while !done.load(Ordering::Relaxed) {
                for s in 0..set.shards() {
                    set.compact_shard(s).unwrap();
                }
                rounds += 1;
            }
            rounds
        })
    };

    // Readers during the rebuild see exactly the live set, every time.
    for probe in 0..60u64 {
        let hits = set.query_exact(&vec_for(probe), 40).unwrap();
        assert_eq!(hits.len(), 40);
        for &(id, d) in &hits {
            assert!(live.contains(&id), "query during rebuild surfaced dead id {id}");
            assert_eq!(d, tmn_eval::embedding_distance(&vec_for(probe), &vec_for(id)));
        }
        let approx = set.query(&vec_for(probe), 10).unwrap();
        assert!(approx.iter().all(|&(id, _)| live.contains(&id)));
    }
    done.store(true, Ordering::Relaxed);
    let rounds = compactor.join().expect("compactor panicked");
    assert!(rounds > 0, "compactor never ran during the queries");
    assert_eq!(set.status().tombstones, 0, "compaction left tombstones");
    assert_eq!(set.live(), live.len());
}
