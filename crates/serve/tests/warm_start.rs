//! Warm start ≡ cold start: an engine whose shards, corpus and embedding
//! cache are loaded from the on-disk `tmn-store` files must be
//! indistinguishable from one that ingested the same trajectories over the
//! insert path — same rankings, same distances, same status counters.
//!
//! The equivalence is exact (not approximate) because both paths feed the
//! same per-shard insert sequence to deterministically-seeded HNSW shards,
//! and the stored embeddings are produced by the same batch shape the cold
//! engine's one-request admission windows use.

use tmn_core::{ModelConfig, ModelKind};
use tmn_eval::{encode_all, EmbeddingStore};
use tmn_serve::{ServeConfig, ServeEngine, ServeError, ShardSetConfig};
use tmn_store::{write_corpus, CorpusFile};
use tmn_traj::{Point, Trajectory};

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tmn-serve-warm-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn traj(seed: u64, len: usize) -> Trajectory {
    let pts = (0..len)
        .map(|i| {
            let h = tmn_index::splitmix64(seed * 131 + i as u64);
            Point { lon: (h % 1000) as f64 / 1000.0, lat: ((h >> 10) % 1000) as f64 / 1000.0 }
        })
        .collect();
    Trajectory::new(pts)
}

const MCFG: ModelConfig = ModelConfig { dim: 16, seed: 7 };

fn cfg() -> ServeConfig {
    ServeConfig {
        shard: ShardSetConfig { shards: 2, shortlist: 32, ..Default::default() },
        max_batch: 8,
        ..Default::default()
    }
}

/// Persist `trajs` plus their embeddings (computed exactly as the cold
/// engine's singleton admission batches would) and reopen both stores.
fn persist(trajs: &[Trajectory], tag: &str) -> (CorpusFile, EmbeddingStore) {
    let model = ModelKind::TmnNm.build(&MCFG);
    // batch_size 1 reproduces the cold path: each insert arrives alone, so
    // each embedding comes from a batch of one.
    let embeds = encode_all(model.as_ref(), trajs, 1);
    let emb_path = tmp(&format!("{tag}-emb.tmns"));
    EmbeddingStore::from_vectors(&embeds).save(&emb_path).unwrap();
    let corpus_path = tmp(&format!("{tag}-corpus.tmns"));
    write_corpus(&corpus_path, trajs).unwrap();
    (CorpusFile::open(&corpus_path).unwrap(), EmbeddingStore::open_mmap(&emb_path).unwrap())
}

#[test]
fn warm_engine_matches_cold_engine_exactly() {
    let trajs: Vec<Trajectory> = (0..40).map(|i| traj(i, 8 + (i % 5) as usize)).collect();
    let (corpus, embeddings) = persist(&trajs, "match");
    let warm = ServeEngine::start_warm(ModelKind::TmnNm, &MCFG, cfg(), &corpus, &embeddings).unwrap();

    let cold = ServeEngine::start(ModelKind::TmnNm, &MCFG, cfg()).unwrap();
    let ch = cold.handle();
    for (i, t) in trajs.iter().enumerate() {
        ch.insert(i as u64, t.clone()).unwrap();
    }

    let wh = warm.handle();
    // Ad-hoc queries: identical rankings *and* identical distances.
    for q in [traj(3, 9), traj(77, 11), traj(200, 7)] {
        assert_eq!(wh.query(q.clone(), 5).unwrap(), ch.query(q, 5).unwrap());
    }
    // By-id queries run off the warm cache on both sides.
    for id in [0u64, 17, 39] {
        assert_eq!(wh.query_id(id, 5).unwrap(), ch.query_id(id, 5).unwrap());
    }
    // Live mutations keep working on a warm engine.
    assert!(wh.delete(5).unwrap());
    assert!(wh.query(traj(5, 8), 40).unwrap().iter().all(|&(id, _)| id != 5));
}

#[test]
fn warm_status_reports_full_corpus_and_cache() {
    let trajs: Vec<Trajectory> = (0..25).map(|i| traj(100 + i, 10)).collect();
    let (corpus, embeddings) = persist(&trajs, "status");
    let engine =
        ServeEngine::start_warm(ModelKind::TmnNm, &MCFG, cfg(), &corpus, &embeddings).unwrap();
    let status = engine.handle().status().unwrap();
    assert_eq!(status.corpus, 25, "warm corpus must be fully populated");
    assert_eq!(status.cache_entries, 25, "warm cache must be fully populated");
    assert_eq!(status.shards.live, 25);
    assert!(!status.degraded_mode);
}

#[test]
fn warm_start_rejects_bad_configurations() {
    let trajs: Vec<Trajectory> = (0..5).map(|i| traj(i, 8)).collect();
    let (corpus, embeddings) = persist(&trajs, "reject");
    // Pair-dependent models cannot serve from a vector index, warm or not.
    assert_eq!(
        ServeEngine::start_warm(ModelKind::Tmn, &MCFG, cfg(), &corpus, &embeddings).err(),
        Some(ServeError::PairDependentModel("TMN"))
    );
    // A store whose rows don't match the model dimension is refused.
    let wrong = ModelConfig { dim: 8, seed: 7 };
    assert_eq!(
        ServeEngine::start_warm(ModelKind::TmnNm, &wrong, cfg(), &corpus, &embeddings).err(),
        Some(ServeError::DimMismatch { expected: 8, got: 16 })
    );
}
