//! Tracing must be a pure observer: a serve engine run with request tracing
//! enabled has to produce bitwise-identical query results, identical append
//! outcomes, and identical status counters to the same workload with
//! tracing disabled. Mirror of `crates/core/tests/metrics_invariance.rs`
//! for the flight recorder added in the tracing PR — spans only ever read
//! already-computed wall-clock scalars and ids, never tensor data, and this
//! locks that in.
//!
//! Kept as a single test function: the trace enable flag is process-global,
//! and this integration-test binary owns its process.

use tmn_core::{ModelConfig, ModelKind};
use tmn_obs::trace;
use tmn_obs::TraceConfig;
use tmn_serve::{ServeConfig, ServeEngine, ShardSetConfig};
use tmn_traj::{Point, Trajectory};

fn traj(seed: u64, len: usize) -> Trajectory {
    let pts = (0..len)
        .map(|i| {
            let h = tmn_index::splitmix64(seed * 131 + i as u64);
            Point { lon: (h % 1000) as f64 / 1000.0, lat: ((h >> 10) % 1000) as f64 / 1000.0 }
        })
        .collect();
    Trajectory::new(pts)
}

const MCFG: ModelConfig = ModelConfig { dim: 16, seed: 7 };

fn cfg() -> ServeConfig {
    ServeConfig {
        shard: ShardSetConfig { shards: 2, shortlist: 32, ..Default::default() },
        max_batch: 8,
        ..Default::default()
    }
}

/// Ranked results with distances as raw f64 bits, so comparisons are
/// bitwise rather than approximate.
type RankedBits = Vec<Vec<(u64, u64)>>;

/// Run the full mixed workload — inserts, deletes, ad-hoc + by-id queries,
/// stream appends — and return every observable result.
fn run_workload() -> (RankedBits, Vec<String>, (usize, usize, usize)) {
    let engine = ServeEngine::start(ModelKind::TmnNm, &MCFG, cfg()).unwrap();
    let h = engine.handle();
    for i in 0..32u64 {
        h.insert(i, traj(i, 8 + (i % 5) as usize)).unwrap();
    }
    h.delete(11).unwrap();

    let mut results: RankedBits = Vec::new();
    let mut outcomes: Vec<String> = Vec::new();
    for q in [traj(3, 9), traj(77, 11), traj(200, 7)] {
        let ranked = h.query(q, 5).unwrap();
        results.push(ranked.into_iter().map(|(id, d)| (id, d.to_bits())).collect());
    }
    for id in [0u64, 17, 31] {
        let ranked = h.query_id(id, 5).unwrap();
        results.push(ranked.into_iter().map(|(id, d)| (id, d.to_bits())).collect());
    }
    for step in 0..6u64 {
        let out = h.append_point(4, Point { lon: 0.1 + 0.07 * step as f64, lat: 0.3 }).unwrap();
        outcomes.push(format!("{out:?}"));
    }
    let ranked = h.query(traj(4, 9), 8).unwrap();
    results.push(ranked.into_iter().map(|(id, d)| (id, d.to_bits())).collect());

    let st = h.status().unwrap();
    let shape = (st.corpus, st.cache_entries, st.streams);
    engine.shutdown();
    (results, outcomes, shape)
}

#[test]
fn tracing_on_and_off_serve_identically() {
    trace::set_enabled(false);
    trace::reset();
    let (off_results, off_outcomes, off_shape) = run_workload();
    assert_eq!(trace::stats().started, 0, "disabled tracer must record nothing");

    trace::configure(TraceConfig { slow_threshold_ns: 0, sample_every: 1, ..Default::default() });
    trace::set_enabled(true);
    trace::reset();
    let (on_results, on_outcomes, on_shape) = run_workload();
    let stats = trace::stats();
    trace::set_enabled(false);

    assert!(stats.started > 0, "enabled tracer must have seen the requests");
    assert!(stats.flight_len > 0, "capture-all config must have kept traces");
    let traced_query = trace::recent()
        .into_iter()
        .find(|t| t.name == "serve.query")
        .expect("a serve.query trace must be captured");
    assert!(traced_query.is_well_formed());

    assert_eq!(off_results, on_results, "tracing changed query results bitwise");
    assert_eq!(off_outcomes, on_outcomes, "tracing changed append outcomes");
    assert_eq!(off_shape, on_shape, "tracing changed engine status counters");

    trace::configure(TraceConfig::default());
    trace::reset();
}
