//! Property tests for the index crate: kd-tree exactness against brute
//! force and HNSW recall/ordering invariants under random data.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tmn_index::{Hnsw, HnswConfig, KdTree};

fn dist_sq(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

fn brute_distances(points: &[Vec<f32>], q: &[f32], k: usize) -> Vec<f32> {
    let mut d: Vec<f32> = points.iter().map(|p| dist_sq(q, p)).collect();
    d.sort_by(|a, b| a.partial_cmp(b).unwrap());
    d.truncate(k);
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn kdtree_knn_distances_match_brute_force(
        points in prop::collection::vec(
            prop::collection::vec(-10.0f32..10.0, 3), 1..120),
        query in prop::collection::vec(-10.0f32..10.0, 3),
        k in 1usize..12,
    ) {
        let tree = KdTree::build(points.clone());
        let got: Vec<f32> = tree.knn(&query, k).into_iter().map(|(_, d)| d * d).collect();
        let want = brute_distances(&points, &query, k.min(points.len()));
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((g - w).abs() < 1e-3, "kdtree distance {g} vs brute {w}");
        }
    }

    #[test]
    fn hnsw_results_sorted_and_contain_self(
        seed in 0u64..200,
        n in 20usize..100,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let points: Vec<Vec<f32>> = (0..n)
            .map(|i| vec![(i % 7) as f32, (i % 11) as f32, (i % 13) as f32])
            .collect();
        let mut h = Hnsw::new(3, HnswConfig { m: 8, ef_construction: 60, ef_search: 40 });
        for p in &points {
            h.insert(p, &mut rng);
        }
        // A stored vector's nearest neighbour at distance 0 must be found.
        let nn = h.knn(&points[0], 3);
        prop_assert!(!nn.is_empty());
        prop_assert_eq!(nn[0].1, 0.0);
        for w in nn.windows(2) {
            prop_assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn hnsw_larger_ef_never_hurts_recall(
        seed in 0u64..50,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let points: Vec<Vec<f32>> = (0..200)
            .map(|i| {
                let x = ((i * 37 + seed as usize) % 101) as f32 / 101.0;
                let y = ((i * 53) % 97) as f32 / 97.0;
                vec![x, y]
            })
            .collect();
        let mut h = Hnsw::new(2, HnswConfig { m: 8, ef_construction: 60, ef_search: 10 });
        for p in &points {
            h.insert(p, &mut rng);
        }
        let q = vec![0.5f32, 0.5];
        let exact: Vec<f32> = brute_distances(&points, &q, 10);
        let recall = |ef: usize| {
            let got = h.knn_ef(&q, 10, ef);
            let got_d: Vec<f32> = got.iter().map(|&(_, d)| d * d).collect();
            exact
                .iter()
                .filter(|&&e| got_d.iter().any(|&g| (g - e).abs() < 1e-4))
                .count()
        };
        let low = recall(10);
        let high = recall(120);
        prop_assert!(high >= low, "ef=120 recall {high} < ef=10 recall {low}");
        prop_assert!(high >= 8, "high-ef recall too low: {high}/10");
    }
}
