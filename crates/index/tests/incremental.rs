//! Incremental insert/delete behaviour of the HNSW index: tombstones never
//! surface in results, shortlist compensation keeps recall up under churn,
//! and the quantized store behaves identically at the API level.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tmn_index::{Hnsw, HnswConfig};

fn vectors(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    use rand::Rng;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect()
}

fn brute_knn_live(pts: &[Vec<f32>], live: &[bool], q: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..pts.len()).filter(|&i| live[i]).collect();
    idx.sort_by(|&a, &b| {
        let da: f32 = q.iter().zip(&pts[a]).map(|(x, y)| (x - y) * (x - y)).sum();
        let db: f32 = q.iter().zip(&pts[b]).map(|(x, y)| (x - y) * (x - y)).sum();
        da.partial_cmp(&db).unwrap().then(a.cmp(&b))
    });
    idx.truncate(k);
    idx
}

#[test]
fn removed_ids_never_appear_in_results() {
    let dim = 4;
    let pts = vectors(120, dim, 1);
    let mut rng = StdRng::seed_from_u64(2);
    let mut h = Hnsw::new(dim, HnswConfig::default());
    for p in &pts {
        h.insert(p, &mut rng);
    }
    assert_eq!(h.live_len(), 120);
    for id in (0..120).step_by(3) {
        assert!(h.remove(id), "first removal of {id} must succeed");
        assert!(!h.remove(id), "double removal of {id} must be a no-op");
    }
    assert_eq!(h.live_len(), 80);
    assert_eq!(h.tombstones(), 40);
    for q in pts.iter().take(20) {
        for (id, _) in h.knn(q, 10) {
            assert!(id % 3 != 0, "tombstoned id {id} surfaced in a search result");
            assert!(!h.is_deleted(id));
        }
    }
}

#[test]
fn recall_holds_after_heavy_deletion() {
    let dim = 8;
    let pts = vectors(500, dim, 7);
    let mut rng = StdRng::seed_from_u64(8);
    let mut h = Hnsw::new(dim, HnswConfig { m: 12, ef_construction: 120, ef_search: 80 });
    for p in &pts {
        h.insert(p, &mut rng);
    }
    // Delete 40% — shortlist compensation must absorb the tombstones.
    let mut live = vec![true; pts.len()];
    for (id, alive) in live.iter_mut().enumerate() {
        if id % 5 < 2 {
            h.remove(id);
            *alive = false;
        }
    }
    let queries = vectors(30, dim, 9);
    let (mut hits, mut total) = (0usize, 0usize);
    for q in &queries {
        let got: Vec<usize> = h.knn(q, 10).into_iter().map(|(i, _)| i).collect();
        let want = brute_knn_live(&pts, &live, q, 10);
        total += want.len();
        hits += want.iter().filter(|w| got.contains(w)).count();
    }
    let recall = hits as f64 / total as f64;
    assert!(recall >= 0.9, "post-deletion recall too low: {recall}");
}

#[test]
fn insert_after_delete_finds_the_new_vector() {
    let dim = 4;
    let pts = vectors(60, dim, 3);
    let mut rng = StdRng::seed_from_u64(4);
    let mut h = Hnsw::new(dim, HnswConfig::default());
    for p in &pts {
        h.insert(p, &mut rng);
    }
    h.remove(5);
    // Re-insert the same vector: it gets a fresh id, and that id is what
    // searches must return (the serving layer maps external ids on top).
    let new_id = h.insert(&pts[5], &mut rng);
    assert_eq!(new_id, 60);
    let top = h.knn(&pts[5], 1);
    assert_eq!(top[0].0, new_id, "reinserted vector must be its own nearest neighbour");
    assert_eq!(top[0].1, 0.0);
}

#[test]
fn delete_everything_yields_empty_results() {
    let dim = 3;
    let pts = vectors(30, dim, 11);
    let mut rng = StdRng::seed_from_u64(12);
    let mut h = Hnsw::new(dim, HnswConfig::default());
    for p in &pts {
        h.insert(p, &mut rng);
    }
    for id in 0..30 {
        h.remove(id);
    }
    assert_eq!(h.live_len(), 0);
    assert!(h.knn(&pts[0], 5).is_empty(), "fully-tombstoned index must return nothing");
    // The graph is still navigable for new inserts.
    let id = h.insert(&pts[0], &mut rng);
    let top = h.knn(&pts[0], 5);
    assert_eq!(top.len(), 1);
    assert_eq!(top[0].0, id);
}

#[test]
fn quantized_index_supports_removal() {
    let dim = 8;
    let pts = vectors(200, dim, 21);
    let mut rng = StdRng::seed_from_u64(22);
    let mut h = Hnsw::new_quantized(dim, HnswConfig { m: 12, ef_construction: 120, ef_search: 80 });
    for p in &pts {
        h.insert(p, &mut rng);
    }
    for id in (0..200).step_by(2) {
        h.remove(id);
    }
    assert_eq!(h.live_len(), 100);
    for q in pts.iter().take(10) {
        for (id, _) in h.knn_ef(q, 10, 60) {
            assert!(id % 2 == 1, "tombstoned id {id} surfaced from the quantized store");
        }
    }
}

#[test]
fn out_of_range_remove_is_rejected() {
    let mut h = Hnsw::new(2, HnswConfig::default());
    assert!(!h.remove(0));
    let mut rng = StdRng::seed_from_u64(0);
    h.insert(&[0.0, 0.0], &mut rng);
    assert!(h.is_deleted(17), "out-of-range ids read as deleted");
    assert!(!h.remove(17));
}
