//! # tmn-index
//!
//! Vector indexes for the TMN pipeline:
//!
//! - [`KdTree`]: exact k-nearest-neighbour search, required by the
//!   Traj2SimVec baseline's sampling strategy (simplified trajectories in a
//!   k-d tree; near samples = its k-NN) and by the TMN-kd ablation of
//!   Table IV.
//! - [`Hnsw`]: approximate nearest-neighbour graph (Malkov et al.) over the
//!   learned trajectory embeddings, the index the paper names as
//!   immediately applicable after embedding (Section I). Supports
//!   full-precision and int8-quantized vector storage (see [`quant`]).

mod hnsw;
mod kdtree;
pub mod quant;
mod sharded;

pub use hnsw::{Hnsw, HnswConfig};
pub use kdtree::KdTree;
pub use sharded::{merge_topk, splitmix64, AnnIndex, ShardRouter, ShardedHnsw};
