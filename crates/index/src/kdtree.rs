//! A k-d tree over fixed-dimension `f32` vectors.
//!
//! Traj2SimVec (Zhang et al., IJCAI-20) simplifies every trajectory into a
//! fixed number of points and stores the flattened vectors in a k-d tree;
//! near training samples are then its k nearest neighbours. This module is
//! that substrate (also reused by tests as a brute-force cross-check for
//! HNSW).

/// Static k-d tree built once over a dataset.
pub struct KdTree {
    dim: usize,
    /// Points in build order; node indices refer into this.
    points: Vec<Vec<f32>>,
    nodes: Vec<Node>,
    root: Option<usize>,
}

struct Node {
    point: usize, // index into `points`
    axis: usize,
    left: Option<usize>,
    right: Option<usize>,
}

fn dist_sq(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

impl KdTree {
    /// Build from a set of equal-dimension vectors.
    pub fn build(points: Vec<Vec<f32>>) -> KdTree {
        let dim = points.first().map(|p| p.len()).unwrap_or(0);
        assert!(
            points.iter().all(|p| p.len() == dim),
            "KdTree: all points must share dimension {dim}"
        );
        let mut tree = KdTree { dim, nodes: Vec::with_capacity(points.len()), points, root: None };
        let mut order: Vec<usize> = (0..tree.points.len()).collect();
        tree.root = tree.build_rec(&mut order, 0);
        tree
    }

    fn build_rec(&mut self, idx: &mut [usize], depth: usize) -> Option<usize> {
        if idx.is_empty() {
            return None;
        }
        let axis = depth % self.dim.max(1);
        idx.sort_by(|&a, &b| {
            self.points[a][axis]
                .partial_cmp(&self.points[b][axis])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mid = idx.len() / 2;
        let point = idx[mid];
        let (left_idx, rest) = idx.split_at_mut(mid);
        let right_idx = &mut rest[1..];
        let left = self.build_rec(left_idx, depth + 1);
        let right = self.build_rec(right_idx, depth + 1);
        self.nodes.push(Node { point, axis, left, right });
        Some(self.nodes.len() - 1)
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The `k` nearest neighbours of `query` as `(point_index, distance)`
    /// sorted ascending by distance.
    pub fn knn(&self, query: &[f32], k: usize) -> Vec<(usize, f32)> {
        assert_eq!(query.len(), self.dim, "KdTree: query dimension mismatch");
        if k == 0 || self.root.is_none() {
            return Vec::new();
        }
        // Bounded max-heap of candidates by distance.
        let mut heap: Vec<(f32, usize)> = Vec::with_capacity(k + 1);
        self.search(self.root.unwrap(), query, k, &mut heap);
        heap.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        heap.into_iter().map(|(d, i)| (i, d.sqrt())).collect()
    }

    fn search(&self, node: usize, query: &[f32], k: usize, heap: &mut Vec<(f32, usize)>) {
        let n = &self.nodes[node];
        let d = dist_sq(query, &self.points[n.point]);
        if heap.len() < k {
            heap.push((d, n.point));
            heap.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap()); // max first
        } else if d < heap[0].0 {
            heap[0] = (d, n.point);
            heap.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
        }
        let delta = query[n.axis] - self.points[n.point][n.axis];
        let (near, far) = if delta <= 0.0 { (n.left, n.right) } else { (n.right, n.left) };
        if let Some(c) = near {
            self.search(c, query, k, heap);
        }
        // Prune the far branch unless the splitting plane is closer than the
        // current k-th best.
        if let Some(c) = far {
            if heap.len() < k || delta * delta < heap[0].0 {
                self.search(c, query, k, heap);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn brute_knn(points: &[Vec<f32>], q: &[f32], k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..points.len()).collect();
        idx.sort_by(|&a, &b| {
            dist_sq(q, &points[a]).partial_cmp(&dist_sq(q, &points[b])).unwrap().then(a.cmp(&b))
        });
        idx.truncate(k);
        idx
    }

    #[test]
    fn exact_match_first() {
        let pts = vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![2.0, 2.0]];
        let tree = KdTree::build(pts);
        let nn = tree.knn(&[1.0, 1.0], 1);
        assert_eq!(nn[0].0, 1);
        assert_eq!(nn[0].1, 0.0);
    }

    #[test]
    fn knn_matches_brute_force_random() {
        let mut rng = StdRng::seed_from_u64(42);
        let pts: Vec<Vec<f32>> =
            (0..300).map(|_| (0..4).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect();
        let tree = KdTree::build(pts.clone());
        for _ in 0..20 {
            let q: Vec<f32> = (0..4).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let got: Vec<usize> = tree.knn(&q, 5).into_iter().map(|(i, _)| i).collect();
            let want = brute_knn(&pts, &q, 5);
            // Distances must agree even if equal-distance ties reorder.
            let gd: Vec<f32> = got.iter().map(|&i| dist_sq(&q, &pts[i])).collect();
            let wd: Vec<f32> = want.iter().map(|&i| dist_sq(&q, &pts[i])).collect();
            for (g, w) in gd.iter().zip(&wd) {
                assert!((g - w).abs() < 1e-6, "kdtree disagrees with brute force");
            }
        }
    }

    #[test]
    fn k_larger_than_points_returns_all() {
        let pts = vec![vec![0.0], vec![5.0]];
        let tree = KdTree::build(pts);
        assert_eq!(tree.knn(&[1.0], 10).len(), 2);
    }

    #[test]
    fn empty_and_zero_k() {
        let tree = KdTree::build(Vec::new());
        assert!(tree.is_empty());
        let tree2 = KdTree::build(vec![vec![1.0]]);
        assert!(tree2.knn(&[0.0], 0).is_empty());
    }

    #[test]
    fn distances_sorted_ascending() {
        let pts = vec![vec![0.0], vec![10.0], vec![3.0], vec![-2.0]];
        let tree = KdTree::build(pts);
        let nn = tree.knn(&[1.0], 4);
        for w in nn.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn query_dim_mismatch_panics() {
        let tree = KdTree::build(vec![vec![0.0, 0.0]]);
        let _ = tree.knn(&[0.0], 1);
    }
}
