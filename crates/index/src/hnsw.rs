//! Hierarchical Navigable Small World graphs (Malkov et al.).
//!
//! The paper (Section I) points out that once trajectories are embedded,
//! state-of-the-art vector indexes like HNSW apply immediately to nearest
//! neighbour search over the embeddings. This is that index, built for the
//! `d`-dimensional embeddings the models emit.

use crate::quant;
use rand::Rng;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Build/search configuration.
#[derive(Debug, Clone, Copy)]
pub struct HnswConfig {
    /// Max connections per node per layer (the paper's `M`).
    pub m: usize,
    /// Beam width during construction.
    pub ef_construction: usize,
    /// Default beam width during search (can be overridden per query).
    pub ef_search: usize,
}

impl Default for HnswConfig {
    fn default() -> Self {
        HnswConfig { m: 16, ef_construction: 100, ef_search: 64 }
    }
}

/// Min-heap adapter over (distance, id).
#[derive(PartialEq)]
struct Candidate {
    dist: f32,
    id: usize,
}

impl Eq for Candidate {}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so BinaryHeap pops the smallest distance.
        other.dist.partial_cmp(&self.dist).unwrap_or(Ordering::Equal).then(other.id.cmp(&self.id))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

struct HnswNode {
    /// Neighbour lists, one per layer this node exists on (`0..=level`).
    neighbours: Vec<Vec<usize>>,
}

/// Backing storage for the indexed vectors.
///
/// `F32` keeps the exact vectors (4·d bytes each). `Int8` keeps symmetric
/// per-vector int8 codes plus an f16 scale (d + 2 bytes each, ≈ 28% of f32
/// at d = 16); graph traversal then measures query-to-code distances, which
/// perturbs the shortlist slightly — callers that need exact top-k rerank
/// the shortlist against full-precision embeddings kept outside the index.
enum VectorStore {
    F32(Vec<f32>),
    Int8 { codes: Vec<i8>, scales: Vec<u16> },
}

/// An HNSW index over vectors of a fixed dimension.
///
/// Supports incremental deletion via tombstones: a removed node stays in the
/// graph as a navigable waypoint (its edges keep the small world connected)
/// but never appears in search results, and [`knn_ef`](Hnsw::knn_ef) widens
/// its beam by the tombstone ratio so the *live* shortlist stays as large as
/// the caller asked for. Callers that churn heavily should rebuild once
/// tombstones dominate (see `tmn-serve`'s per-shard compaction).
pub struct Hnsw {
    config: HnswConfig,
    dim: usize,
    store: VectorStore,
    nodes: Vec<HnswNode>,
    /// Tombstone flags, indexed like `nodes`.
    deleted: Vec<bool>,
    /// Count of non-tombstoned nodes.
    live: usize,
    entry: Option<usize>,
    max_level: usize,
    level_mult: f64,
}

fn dist_sq(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

impl Hnsw {
    pub fn new(dim: usize, config: HnswConfig) -> Hnsw {
        Hnsw::with_store(dim, config, VectorStore::F32(Vec::new()))
    }

    /// An index that stores int8-quantized vectors (d + 2 bytes per vector
    /// instead of 4·d). Search returns an *approximately ranked* shortlist;
    /// pair with an exact rerank for unchanged top-k quality.
    pub fn new_quantized(dim: usize, config: HnswConfig) -> Hnsw {
        Hnsw::with_store(dim, config, VectorStore::Int8 { codes: Vec::new(), scales: Vec::new() })
    }

    fn with_store(dim: usize, config: HnswConfig, store: VectorStore) -> Hnsw {
        assert!(dim > 0, "Hnsw: dimension must be positive");
        assert!(config.m >= 2, "Hnsw: m must be >= 2");
        Hnsw {
            config,
            dim,
            store,
            nodes: Vec::new(),
            deleted: Vec::new(),
            live: 0,
            entry: None,
            max_level: 0,
            level_mult: 1.0 / (config.m as f64).ln(),
        }
    }

    /// Whether vectors are stored int8-quantized.
    pub fn is_quantized(&self) -> bool {
        matches!(self.store, VectorStore::Int8 { .. })
    }

    /// Pre-size the node, tombstone and vector buffers for `additional`
    /// more inserts. Bulk loaders (warm start from an on-disk store) call
    /// this once so a known-size load doesn't pay O(log n) regrowths.
    pub fn reserve(&mut self, additional: usize) {
        self.nodes.reserve(additional);
        self.deleted.reserve(additional);
        match &mut self.store {
            VectorStore::F32(v) => v.reserve(additional * self.dim),
            VectorStore::Int8 { codes, scales } => {
                codes.reserve(additional * self.dim);
                scales.reserve(additional);
            }
        }
    }

    /// Bytes spent on vector storage (codes + scales for the quantized
    /// store); excludes the graph itself, which is identical either way.
    pub fn memory_bytes(&self) -> usize {
        match &self.store {
            VectorStore::F32(v) => v.len() * std::mem::size_of::<f32>(),
            VectorStore::Int8 { codes, scales } => {
                codes.len() + scales.len() * std::mem::size_of::<u16>()
            }
        }
    }

    /// Total node count, tombstones included (ids are `0..len()`).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Nodes that are still searchable (not tombstoned).
    pub fn live_len(&self) -> usize {
        self.live
    }

    /// Tombstoned node count; rebuild when this dominates [`len`](Hnsw::len).
    pub fn tombstones(&self) -> usize {
        self.nodes.len() - self.live
    }

    /// Whether `id` has been removed (out-of-range ids read as deleted).
    pub fn is_deleted(&self, id: usize) -> bool {
        self.deleted.get(id).copied().unwrap_or(true)
    }

    /// Tombstone a vector: it vanishes from every future search result but
    /// stays in the graph as a navigation waypoint. Returns `false` if the
    /// id is unknown or already deleted. O(1).
    pub fn remove(&mut self, id: usize) -> bool {
        if id >= self.nodes.len() || self.deleted[id] {
            return false;
        }
        self.deleted[id] = true;
        self.live -= 1;
        true
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Squared distance from a full-precision query to stored vector `id`
    /// (decoded on the fly for the quantized store).
    fn dist_to(&self, query: &[f32], id: usize) -> f32 {
        match &self.store {
            VectorStore::F32(v) => dist_sq(query, &v[id * self.dim..(id + 1) * self.dim]),
            VectorStore::Int8 { codes, scales } => {
                let s = quant::f16_bits_to_f32(scales[id]);
                let row = &codes[id * self.dim..(id + 1) * self.dim];
                query
                    .iter()
                    .zip(row)
                    .map(|(&x, &c)| {
                        let d = x - c as f32 * s;
                        d * d
                    })
                    .sum()
            }
        }
    }

    /// Stored vector `id` as owned f32s (decoded for the quantized store).
    fn decoded(&self, id: usize) -> Vec<f32> {
        match &self.store {
            VectorStore::F32(v) => v[id * self.dim..(id + 1) * self.dim].to_vec(),
            VectorStore::Int8 { codes, scales } => {
                let mut out = vec![0.0f32; self.dim];
                let row = &codes[id * self.dim..(id + 1) * self.dim];
                quant::dequantize_into(row, scales[id], &mut out);
                out
            }
        }
    }

    /// Insert a vector; returns its id (= insertion order).
    pub fn insert(&mut self, v: &[f32], rng: &mut impl Rng) -> usize {
        assert_eq!(v.len(), self.dim, "Hnsw: vector dimension mismatch");
        let id = self.nodes.len();
        match &mut self.store {
            VectorStore::F32(vs) => vs.extend_from_slice(v),
            VectorStore::Int8 { codes, scales } => {
                let start = codes.len();
                codes.resize(start + v.len(), 0);
                scales.push(quant::quantize_into(v, &mut codes[start..]));
            }
        }
        let level = (-rng.gen_range(f64::MIN_POSITIVE..1.0).ln() * self.level_mult) as usize;
        self.nodes.push(HnswNode { neighbours: vec![Vec::new(); level + 1] });
        self.deleted.push(false);
        self.live += 1;

        let Some(mut cur) = self.entry else {
            self.entry = Some(id);
            self.max_level = level;
            return id;
        };

        // Greedy descent through layers above `level`.
        for l in (level + 1..=self.max_level).rev() {
            cur = self.greedy_closest(v, cur, l);
        }
        // Insert with beam search on each layer from min(level, max_level) down.
        for l in (0..=level.min(self.max_level)).rev() {
            let candidates = self.search_layer(v, cur, l, self.config.ef_construction, true);
            let m_max = if l == 0 { self.config.m * 2 } else { self.config.m };
            // Prefer live neighbours so new edges don't waste slots on
            // tombstones; fall back to tombstoned waypoints only when the
            // layer has too few live candidates to stay connected.
            let mut selected: Vec<usize> = candidates
                .iter()
                .filter(|&&(_, i)| !self.deleted[i])
                .take(self.config.m)
                .map(|&(_, i)| i)
                .collect();
            if selected.is_empty() {
                selected.extend(candidates.iter().take(self.config.m).map(|&(_, i)| i));
            }
            for &nb in &selected {
                self.nodes[id].neighbours[l].push(nb);
                self.nodes[nb].neighbours[l].push(id);
                // Prune over-full neighbour lists, keeping the closest.
                if self.nodes[nb].neighbours[l].len() > m_max {
                    let base = self.decoded(nb);
                    let mut list = std::mem::take(&mut self.nodes[nb].neighbours[l]);
                    list.sort_by(|&a, &b| {
                        self.dist_to(&base, a)
                            .partial_cmp(&self.dist_to(&base, b))
                            .unwrap_or(Ordering::Equal)
                    });
                    list.truncate(m_max);
                    self.nodes[nb].neighbours[l] = list;
                }
            }
            if let Some(&(_, best)) = candidates.first() {
                cur = best;
            }
        }
        if level > self.max_level {
            self.max_level = level;
            self.entry = Some(id);
        }
        id
    }

    fn greedy_closest(&self, query: &[f32], start: usize, layer: usize) -> usize {
        let mut cur = start;
        let mut cur_d = self.dist_to(query, cur);
        loop {
            let mut improved = false;
            for &nb in &self.nodes[cur].neighbours[layer] {
                let d = self.dist_to(query, nb);
                if d < cur_d {
                    cur = nb;
                    cur_d = d;
                    improved = true;
                }
            }
            if !improved {
                return cur;
            }
        }
    }

    /// Beam search on one layer; returns up to `ef` `(dist_sq, id)` pairs
    /// sorted ascending. With `include_deleted = false`, tombstoned nodes
    /// still steer the traversal (the frontier walks through them) but are
    /// excluded from the result list — the standard filtered-HNSW scheme.
    fn search_layer(
        &self,
        query: &[f32],
        entry: usize,
        layer: usize,
        ef: usize,
        include_deleted: bool,
    ) -> Vec<(f32, usize)> {
        let mut visited = vec![false; self.nodes.len()];
        visited[entry] = true;
        let d0 = self.dist_to(query, entry);
        let mut frontier = BinaryHeap::new(); // pops nearest first
        frontier.push(Candidate { dist: d0, id: entry });
        let mut results: Vec<(f32, usize)> = if include_deleted || !self.deleted[entry] {
            vec![(d0, entry)]
        } else {
            Vec::new()
        };
        while let Some(Candidate { dist, id }) = frontier.pop() {
            let worst = if results.len() >= ef {
                results.last().map(|r| r.0).unwrap_or(f32::INFINITY)
            } else {
                f32::INFINITY
            };
            if dist > worst {
                break;
            }
            for &nb in &self.nodes[id].neighbours[layer] {
                if visited[nb] {
                    continue;
                }
                visited[nb] = true;
                let d = self.dist_to(query, nb);
                let worst = if results.len() >= ef {
                    results.last().map(|r| r.0).unwrap_or(f32::INFINITY)
                } else {
                    f32::INFINITY
                };
                if d < worst {
                    frontier.push(Candidate { dist: d, id: nb });
                    if include_deleted || !self.deleted[nb] {
                        let pos = results.partition_point(|r| r.0 < d);
                        results.insert(pos, (d, nb));
                        if results.len() > ef {
                            results.pop();
                        }
                    }
                }
            }
        }
        results
    }

    /// The `k` approximate nearest neighbours of `query` as
    /// `(id, euclidean_distance)` sorted ascending.
    pub fn knn(&self, query: &[f32], k: usize) -> Vec<(usize, f32)> {
        self.knn_ef(query, k, self.config.ef_search)
    }

    /// `knn` with an explicit beam width `ef >= k`. Tombstoned vectors never
    /// appear in the result; the beam is widened by the tombstone ratio
    /// (shortlist compensation) so the *live* candidate pool stays as large
    /// as the caller requested and recall holds under churn.
    pub fn knn_ef(&self, query: &[f32], k: usize, ef: usize) -> Vec<(usize, f32)> {
        assert_eq!(query.len(), self.dim, "Hnsw: query dimension mismatch");
        let Some(mut cur) = self.entry else {
            return Vec::new();
        };
        if k == 0 || self.live == 0 {
            return Vec::new();
        }
        let mut ef = ef.max(k);
        if self.live < self.nodes.len() {
            ef = (ef * self.nodes.len()).div_ceil(self.live).min(self.nodes.len());
        }
        for l in (1..=self.max_level).rev() {
            cur = self.greedy_closest(query, cur, l);
        }
        let mut res = self.search_layer(query, cur, 0, ef, false);
        res.truncate(k);
        res.into_iter().map(|(d, i)| (i, d.sqrt())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_vectors(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect()
    }

    fn brute_knn(points: &[Vec<f32>], q: &[f32], k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..points.len()).collect();
        idx.sort_by(|&a, &b| {
            dist_sq(q, &points[a]).partial_cmp(&dist_sq(q, &points[b])).unwrap()
        });
        idx.truncate(k);
        idx
    }

    #[test]
    fn empty_index_returns_nothing() {
        let h = Hnsw::new(4, HnswConfig::default());
        assert!(h.knn(&[0.0; 4], 5).is_empty());
    }

    #[test]
    fn single_point() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut h = Hnsw::new(2, HnswConfig::default());
        h.insert(&[1.0, 2.0], &mut rng);
        let nn = h.knn(&[1.0, 2.0], 3);
        assert_eq!(nn.len(), 1);
        assert_eq!(nn[0], (0, 0.0));
    }

    #[test]
    fn high_recall_on_random_data() {
        let dim = 8;
        let pts = random_vectors(500, dim, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let mut h = Hnsw::new(dim, HnswConfig { m: 12, ef_construction: 120, ef_search: 80 });
        for p in &pts {
            h.insert(p, &mut rng);
        }
        let queries = random_vectors(30, dim, 9);
        let mut hits = 0usize;
        let mut total = 0usize;
        for q in &queries {
            let got: Vec<usize> = h.knn(q, 10).into_iter().map(|(i, _)| i).collect();
            let want = brute_knn(&pts, q, 10);
            total += want.len();
            hits += want.iter().filter(|w| got.contains(w)).count();
        }
        let recall = hits as f64 / total as f64;
        assert!(recall >= 0.9, "recall too low: {recall}");
    }

    #[test]
    fn results_sorted_ascending() {
        let pts = random_vectors(100, 4, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let mut h = Hnsw::new(4, HnswConfig::default());
        for p in &pts {
            h.insert(p, &mut rng);
        }
        let nn = h.knn(&pts[0], 10);
        for w in nn.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        // The query point itself is its own nearest neighbour.
        assert_eq!(nn[0].0, 0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dim_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut h = Hnsw::new(3, HnswConfig::default());
        h.insert(&[0.0, 0.0], &mut rng);
    }

    #[test]
    fn quantized_index_keeps_high_recall() {
        let dim = 8;
        let pts = random_vectors(500, dim, 7);
        let config = HnswConfig { m: 12, ef_construction: 120, ef_search: 80 };
        let mut rng = StdRng::seed_from_u64(8);
        let mut h = Hnsw::new_quantized(dim, config);
        for p in &pts {
            h.insert(p, &mut rng);
        }
        assert!(h.is_quantized());
        let queries = random_vectors(30, dim, 9);
        let (mut hits, mut total) = (0usize, 0usize);
        for q in &queries {
            // A modest shortlist absorbs the quantization perturbation.
            let got: Vec<usize> = h.knn_ef(q, 10, 40).into_iter().map(|(i, _)| i).collect();
            let want = brute_knn(&pts, q, 10);
            total += want.len();
            hits += want.iter().filter(|w| got.contains(w)).count();
        }
        let recall = hits as f64 / total as f64;
        assert!(recall >= 0.85, "quantized recall too low: {recall}");
    }

    #[test]
    fn quantized_store_is_under_30_percent_of_f32() {
        let dim = 16;
        let pts = random_vectors(200, dim, 11);
        let mut rng = StdRng::seed_from_u64(12);
        let mut f = Hnsw::new(dim, HnswConfig::default());
        let mut q = Hnsw::new_quantized(dim, HnswConfig::default());
        for p in &pts {
            f.insert(p, &mut rng);
            q.insert(p, &mut rng);
        }
        assert_eq!(f.memory_bytes(), 200 * dim * 4);
        assert_eq!(q.memory_bytes(), 200 * (dim + 2));
        let ratio = q.memory_bytes() as f64 / f.memory_bytes() as f64;
        assert!(ratio <= 0.30, "quantized store too large: {ratio}");
    }
}
