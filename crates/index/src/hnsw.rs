//! Hierarchical Navigable Small World graphs (Malkov et al.).
//!
//! The paper (Section I) points out that once trajectories are embedded,
//! state-of-the-art vector indexes like HNSW apply immediately to nearest
//! neighbour search over the embeddings. This is that index, built for the
//! `d`-dimensional embeddings the models emit.

use rand::Rng;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Build/search configuration.
#[derive(Debug, Clone, Copy)]
pub struct HnswConfig {
    /// Max connections per node per layer (the paper's `M`).
    pub m: usize,
    /// Beam width during construction.
    pub ef_construction: usize,
    /// Default beam width during search (can be overridden per query).
    pub ef_search: usize,
}

impl Default for HnswConfig {
    fn default() -> Self {
        HnswConfig { m: 16, ef_construction: 100, ef_search: 64 }
    }
}

/// Min-heap adapter over (distance, id).
#[derive(PartialEq)]
struct Candidate {
    dist: f32,
    id: usize,
}

impl Eq for Candidate {}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so BinaryHeap pops the smallest distance.
        other.dist.partial_cmp(&self.dist).unwrap_or(Ordering::Equal).then(other.id.cmp(&self.id))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

struct HnswNode {
    /// Neighbour lists, one per layer this node exists on (`0..=level`).
    neighbours: Vec<Vec<usize>>,
}

/// An HNSW index over `f32` vectors of a fixed dimension.
pub struct Hnsw {
    config: HnswConfig,
    dim: usize,
    vectors: Vec<f32>, // flattened, row-major
    nodes: Vec<HnswNode>,
    entry: Option<usize>,
    max_level: usize,
    level_mult: f64,
}

fn dist_sq(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

impl Hnsw {
    pub fn new(dim: usize, config: HnswConfig) -> Hnsw {
        assert!(dim > 0, "Hnsw: dimension must be positive");
        assert!(config.m >= 2, "Hnsw: m must be >= 2");
        Hnsw {
            config,
            dim,
            vectors: Vec::new(),
            nodes: Vec::new(),
            entry: None,
            max_level: 0,
            level_mult: 1.0 / (config.m as f64).ln(),
        }
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    fn vector(&self, id: usize) -> &[f32] {
        &self.vectors[id * self.dim..(id + 1) * self.dim]
    }

    /// Insert a vector; returns its id (= insertion order).
    pub fn insert(&mut self, v: &[f32], rng: &mut impl Rng) -> usize {
        assert_eq!(v.len(), self.dim, "Hnsw: vector dimension mismatch");
        let id = self.nodes.len();
        self.vectors.extend_from_slice(v);
        let level = (-rng.gen_range(f64::MIN_POSITIVE..1.0).ln() * self.level_mult) as usize;
        self.nodes.push(HnswNode { neighbours: vec![Vec::new(); level + 1] });

        let Some(mut cur) = self.entry else {
            self.entry = Some(id);
            self.max_level = level;
            return id;
        };

        // Greedy descent through layers above `level`.
        for l in (level + 1..=self.max_level).rev() {
            cur = self.greedy_closest(v, cur, l);
        }
        // Insert with beam search on each layer from min(level, max_level) down.
        for l in (0..=level.min(self.max_level)).rev() {
            let candidates = self.search_layer(v, cur, l, self.config.ef_construction);
            let m_max = if l == 0 { self.config.m * 2 } else { self.config.m };
            let selected: Vec<usize> =
                candidates.iter().take(self.config.m).map(|&(_, i)| i).collect();
            for &nb in &selected {
                self.nodes[id].neighbours[l].push(nb);
                self.nodes[nb].neighbours[l].push(id);
                // Prune over-full neighbour lists, keeping the closest.
                if self.nodes[nb].neighbours[l].len() > m_max {
                    let base = self.vector(nb).to_vec();
                    let mut list = std::mem::take(&mut self.nodes[nb].neighbours[l]);
                    list.sort_by(|&a, &b| {
                        dist_sq(&base, self.vector(a))
                            .partial_cmp(&dist_sq(&base, self.vector(b)))
                            .unwrap_or(Ordering::Equal)
                    });
                    list.truncate(m_max);
                    self.nodes[nb].neighbours[l] = list;
                }
            }
            if let Some(&(_, best)) = candidates.first() {
                cur = best;
            }
        }
        if level > self.max_level {
            self.max_level = level;
            self.entry = Some(id);
        }
        id
    }

    fn greedy_closest(&self, query: &[f32], start: usize, layer: usize) -> usize {
        let mut cur = start;
        let mut cur_d = dist_sq(query, self.vector(cur));
        loop {
            let mut improved = false;
            for &nb in &self.nodes[cur].neighbours[layer] {
                let d = dist_sq(query, self.vector(nb));
                if d < cur_d {
                    cur = nb;
                    cur_d = d;
                    improved = true;
                }
            }
            if !improved {
                return cur;
            }
        }
    }

    /// Beam search on one layer; returns up to `ef` `(dist_sq, id)` pairs
    /// sorted ascending.
    fn search_layer(&self, query: &[f32], entry: usize, layer: usize, ef: usize) -> Vec<(f32, usize)> {
        let mut visited = vec![false; self.nodes.len()];
        visited[entry] = true;
        let d0 = dist_sq(query, self.vector(entry));
        let mut frontier = BinaryHeap::new(); // pops nearest first
        frontier.push(Candidate { dist: d0, id: entry });
        let mut results: Vec<(f32, usize)> = vec![(d0, entry)];
        while let Some(Candidate { dist, id }) = frontier.pop() {
            let worst = results.last().map(|r| r.0).unwrap_or(f32::INFINITY);
            if results.len() >= ef && dist > worst {
                break;
            }
            for &nb in &self.nodes[id].neighbours[layer] {
                if visited[nb] {
                    continue;
                }
                visited[nb] = true;
                let d = dist_sq(query, self.vector(nb));
                let worst = results.last().map(|r| r.0).unwrap_or(f32::INFINITY);
                if results.len() < ef || d < worst {
                    frontier.push(Candidate { dist: d, id: nb });
                    let pos = results.partition_point(|r| r.0 < d);
                    results.insert(pos, (d, nb));
                    if results.len() > ef {
                        results.pop();
                    }
                }
            }
        }
        results
    }

    /// The `k` approximate nearest neighbours of `query` as
    /// `(id, euclidean_distance)` sorted ascending.
    pub fn knn(&self, query: &[f32], k: usize) -> Vec<(usize, f32)> {
        self.knn_ef(query, k, self.config.ef_search)
    }

    /// `knn` with an explicit beam width `ef >= k`.
    pub fn knn_ef(&self, query: &[f32], k: usize, ef: usize) -> Vec<(usize, f32)> {
        assert_eq!(query.len(), self.dim, "Hnsw: query dimension mismatch");
        let Some(mut cur) = self.entry else {
            return Vec::new();
        };
        if k == 0 {
            return Vec::new();
        }
        for l in (1..=self.max_level).rev() {
            cur = self.greedy_closest(query, cur, l);
        }
        let mut res = self.search_layer(query, cur, 0, ef.max(k));
        res.truncate(k);
        res.into_iter().map(|(d, i)| (i, d.sqrt())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_vectors(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect()
    }

    fn brute_knn(points: &[Vec<f32>], q: &[f32], k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..points.len()).collect();
        idx.sort_by(|&a, &b| {
            dist_sq(q, &points[a]).partial_cmp(&dist_sq(q, &points[b])).unwrap()
        });
        idx.truncate(k);
        idx
    }

    #[test]
    fn empty_index_returns_nothing() {
        let h = Hnsw::new(4, HnswConfig::default());
        assert!(h.knn(&[0.0; 4], 5).is_empty());
    }

    #[test]
    fn single_point() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut h = Hnsw::new(2, HnswConfig::default());
        h.insert(&[1.0, 2.0], &mut rng);
        let nn = h.knn(&[1.0, 2.0], 3);
        assert_eq!(nn.len(), 1);
        assert_eq!(nn[0], (0, 0.0));
    }

    #[test]
    fn high_recall_on_random_data() {
        let dim = 8;
        let pts = random_vectors(500, dim, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let mut h = Hnsw::new(dim, HnswConfig { m: 12, ef_construction: 120, ef_search: 80 });
        for p in &pts {
            h.insert(p, &mut rng);
        }
        let queries = random_vectors(30, dim, 9);
        let mut hits = 0usize;
        let mut total = 0usize;
        for q in &queries {
            let got: Vec<usize> = h.knn(q, 10).into_iter().map(|(i, _)| i).collect();
            let want = brute_knn(&pts, q, 10);
            total += want.len();
            hits += want.iter().filter(|w| got.contains(w)).count();
        }
        let recall = hits as f64 / total as f64;
        assert!(recall >= 0.9, "recall too low: {recall}");
    }

    #[test]
    fn results_sorted_ascending() {
        let pts = random_vectors(100, 4, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let mut h = Hnsw::new(4, HnswConfig::default());
        for p in &pts {
            h.insert(p, &mut rng);
        }
        let nn = h.knn(&pts[0], 10);
        for w in nn.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        // The query point itself is its own nearest neighbour.
        assert_eq!(nn[0].0, 0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dim_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut h = Hnsw::new(3, HnswConfig::default());
        h.insert(&[0.0, 0.0], &mut rng);
    }
}
