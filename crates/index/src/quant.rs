//! Symmetric per-vector int8 quantization for embedding storage.
//!
//! Each `d`-dimensional vector is stored as `d` signed bytes plus one
//! per-vector scale `s = max|v| / 127` kept as IEEE 754 binary16 bits
//! (hand-rolled — no half-precision dependency), so a vector costs
//! `d + 2` bytes instead of `4·d`. Quantization is symmetric (no zero
//! point): `code = round(v / s)`, `v̂ = code · s`, which keeps the decoder
//! a single multiply and preserves exact zeros.
//!
//! The scale is rounded *through* f16 before the codes are computed, so
//! the codes are optimal for the scale the decoder will actually use.

/// Convert an `f32` to IEEE 754 binary16 bits (round-to-nearest-even).
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x007f_ffff;
    if exp == 0xff {
        // Inf / NaN (quiet bit forced on for NaN).
        return sign | 0x7c00 | if mant != 0 { 0x0200 } else { 0 };
    }
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7c00; // overflow → ±inf
    }
    if unbiased >= -14 {
        // Normal half: 10 explicit mantissa bits, 13 shifted out.
        let m = mant >> 13;
        let rem = mant & 0x1fff;
        let mut h = (sign as u32) | (((unbiased + 15) as u32) << 10) | m;
        if rem > 0x1000 || (rem == 0x1000 && (m & 1) == 1) {
            h += 1; // carry into the exponent is still a correct rounding
        }
        h as u16
    } else if unbiased >= -24 {
        // Subnormal half: value = m16 · 2⁻²⁴.
        let m = 0x0080_0000 | mant; // implicit leading 1 restored
        let shift = (-unbiased - 1) as u32; // 14..=23
        let m16 = m >> shift;
        let rem = m & ((1 << shift) - 1);
        let half = 1u32 << (shift - 1);
        let mut h = (sign as u32) | m16;
        if rem > half || (rem == half && (m16 & 1) == 1) {
            h += 1;
        }
        h as u16
    } else {
        sign // underflow → ±0
    }
}

/// Convert IEEE 754 binary16 bits back to `f32` (exact — every half value
/// is representable in single precision).
pub fn f16_bits_to_f32(bits: u16) -> f32 {
    let sign = ((bits & 0x8000) as u32) << 16;
    let exp = ((bits >> 10) & 0x1f) as u32;
    let mant = (bits & 0x03ff) as u32;
    let out = if exp == 0x1f {
        sign | 0x7f80_0000 | (mant << 13)
    } else if exp == 0 {
        if mant == 0 {
            sign
        } else {
            // Subnormal half → normalized single.
            let mut e: i32 = 113; // 127 − 15 + 1
            let mut m = mant;
            while m & 0x0400 == 0 {
                m <<= 1;
                e -= 1;
            }
            sign | ((e as u32) << 23) | ((m & 0x03ff) << 13)
        }
    } else {
        sign | ((exp + 127 - 15) << 23) | (mant << 13)
    };
    f32::from_bits(out)
}

/// Quantize `v` symmetrically into `codes` (same length); returns the
/// per-vector scale as f16 bits. Vectors whose magnitude rounds to zero in
/// f16 (including all-zero vectors) get scale 0 and all-zero codes.
pub fn quantize_into(v: &[f32], codes: &mut [i8]) -> u16 {
    assert_eq!(v.len(), codes.len(), "quantize_into: length mismatch");
    let max = v.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
    let mut sbits = f32_to_f16_bits(max / 127.0);
    if sbits == 0x7c00 {
        sbits = 0x7bff; // clamp overflow to the largest finite half
    }
    let scale = f16_bits_to_f32(sbits);
    if scale == 0.0 {
        codes.fill(0);
        return 0;
    }
    let inv = 1.0 / scale;
    for (c, &x) in codes.iter_mut().zip(v) {
        *c = (x * inv).round().clamp(-127.0, 127.0) as i8;
    }
    sbits
}

/// Decode one vector of `codes` under `scale_bits` into `out`.
pub fn dequantize_into(codes: &[i8], scale_bits: u16, out: &mut [f32]) {
    let s = f16_bits_to_f32(scale_bits);
    for (o, &c) in out.iter_mut().zip(codes) {
        *o = c as f32 * s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_round_trips_exact_halves() {
        for x in [0.0f32, 1.0, -1.0, 0.5, 65504.0, -65504.0, 6.103_515_6e-5, 5.960_464_5e-8] {
            let bits = f32_to_f16_bits(x);
            assert_eq!(f16_bits_to_f32(bits), x, "{x} did not round-trip");
        }
    }

    #[test]
    fn f16_conversion_accuracy_and_edges() {
        // Arbitrary f32s land within half-precision ULP (2⁻¹¹ relative).
        for i in 0..1000 {
            let x = (i as f32 - 500.0) * 0.0173;
            let y = f16_bits_to_f32(f32_to_f16_bits(x));
            assert!((x - y).abs() <= x.abs() * 4.9e-4 + 1e-7, "{x} -> {y}");
        }
        assert_eq!(f32_to_f16_bits(1e9), 0x7c00, "overflow must give +inf");
        assert_eq!(f16_bits_to_f32(0x7c00), f32::INFINITY);
        assert_eq!(f32_to_f16_bits(1e-10), 0, "underflow must give +0");
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
    }

    #[test]
    fn quantize_reconstructs_within_half_step() {
        let v: Vec<f32> = (0..64).map(|i| ((i * 37 % 128) as f32 - 64.0) / 17.0).collect();
        let mut codes = vec![0i8; v.len()];
        let sbits = quantize_into(&v, &mut codes);
        let s = f16_bits_to_f32(sbits);
        let max = v.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        for (&x, &c) in v.iter().zip(&codes) {
            let err = (x - c as f32 * s).abs();
            // Half a quantization step, plus the f16 rounding of the scale.
            assert!(err <= 0.5 * s + max * 5e-4, "err {err} at x={x}");
        }
    }

    #[test]
    fn zero_and_tiny_vectors_get_zero_scale() {
        let mut codes = vec![7i8; 4];
        assert_eq!(quantize_into(&[0.0; 4], &mut codes), 0);
        assert_eq!(codes, vec![0; 4]);
        let mut codes = vec![7i8; 4];
        assert_eq!(quantize_into(&[1e-12; 4], &mut codes), 0);
        assert_eq!(codes, vec![0; 4]);
    }

    #[test]
    fn extremes_map_to_full_code_range() {
        let v = [3.0f32, -3.0, 0.0, 1.5];
        let mut codes = vec![0i8; 4];
        let sbits = quantize_into(&v, &mut codes);
        assert_eq!(codes[0], 127);
        assert_eq!(codes[1], -127);
        assert_eq!(codes[2], 0);
        let mut out = [0.0f32; 4];
        dequantize_into(&codes, sbits, &mut out);
        assert!((out[0] - 3.0).abs() < 3.0 * 1e-3);
    }
}
