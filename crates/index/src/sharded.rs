//! Sharded HNSW: a stable id→shard router plus per-shard indexes merged by
//! scatter-gather top-k.
//!
//! One HNSW per core is the serving layout (`tmn-serve` wraps each shard in
//! a lock for concurrent mutation); this module holds the *pure* pieces both
//! the batch eval path and the serving engine share — the [`ShardRouter`]
//! (so an id always lands on the same shard no matter when it arrives), the
//! [`AnnIndex`] abstraction (so shortlist consumers like
//! `EmbeddingStore::knn_rerank` are agnostic to whether the shortlist came
//! from one index or a merge across many), and [`ShardedHnsw`], the static
//! multi-shard index with deterministic merge ordering.

use crate::hnsw::{Hnsw, HnswConfig};
use rand::Rng;
use std::cmp::Ordering;

/// SplitMix64 finalizer: a well-mixed stable hash of an id.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Stable id→shard assignment. Pure function of `(id, shard count)`: the
/// same id routes to the same shard across processes, restarts and
/// insert/delete interleavings — the property the serving engine's
/// delete-then-reinsert path and the warm cache both rely on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    shards: usize,
}

impl ShardRouter {
    pub fn new(shards: usize) -> ShardRouter {
        assert!(shards > 0, "ShardRouter: need at least one shard");
        ShardRouter { shards }
    }

    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Which shard owns `id`.
    #[inline]
    pub fn shard_of(&self, id: u64) -> usize {
        (splitmix64(id) % self.shards as u64) as usize
    }
}

/// Anything that can produce an approximate `(id, distance)` shortlist.
///
/// `EmbeddingStore::knn_rerank` used to take `&Hnsw` directly, silently
/// assuming the shortlist came from a single index; routing it through this
/// trait lets the sharded merge path (and any future index) feed the same
/// exact-rerank machinery.
pub trait AnnIndex {
    /// Vector dimensionality.
    fn dim(&self) -> usize;

    /// Indexed vector count (tombstones included).
    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `k` approximate nearest neighbours under beam width `ef`, as
    /// `(id, euclidean_distance)` ascending.
    fn knn_ef(&self, query: &[f32], k: usize, ef: usize) -> Vec<(usize, f32)>;
}

impl AnnIndex for Hnsw {
    fn dim(&self) -> usize {
        Hnsw::dim(self)
    }

    fn len(&self) -> usize {
        Hnsw::len(self)
    }

    fn knn_ef(&self, query: &[f32], k: usize, ef: usize) -> Vec<(usize, f32)> {
        Hnsw::knn_ef(self, query, k, ef)
    }
}

/// Merge per-shard `(id, distance)` lists into one ascending top-`k`.
///
/// Deterministic regardless of shard arrival order: ties on distance break
/// on id, so the merged list is a pure function of the candidate *set* —
/// the property the serving tests pin down as "bitwise-merge correctness".
pub fn merge_topk(mut candidates: Vec<(usize, f32)>, k: usize) -> Vec<(usize, f32)> {
    candidates.sort_by(|a, b| {
        a.1.partial_cmp(&b.1).unwrap_or(Ordering::Equal).then(a.0.cmp(&b.0))
    });
    candidates.truncate(k);
    candidates
}

/// A static sharded HNSW index over globally-numbered vectors.
///
/// Vectors are routed by [`ShardRouter`] on their global id; queries
/// scatter to every shard and gather through [`merge_topk`]. Search quality
/// per shard matches a single index of that shard's size, and the merge is
/// exact over the per-shard shortlists — so with per-shard beam `ef`, the
/// sharded index explores *more* total candidates than one monolithic index
/// at equal `ef`, never fewer.
pub struct ShardedHnsw {
    router: ShardRouter,
    shards: Vec<Hnsw>,
    /// Per shard: local insertion id → global id.
    globals: Vec<Vec<usize>>,
    len: usize,
}

impl ShardedHnsw {
    pub fn new(dim: usize, config: HnswConfig, shards: usize) -> ShardedHnsw {
        Self::with_store(dim, config, shards, false)
    }

    /// Shards holding int8-quantized vectors (pair with an exact rerank).
    pub fn new_quantized(dim: usize, config: HnswConfig, shards: usize) -> ShardedHnsw {
        Self::with_store(dim, config, shards, true)
    }

    fn with_store(dim: usize, config: HnswConfig, shards: usize, quantized: bool) -> ShardedHnsw {
        let router = ShardRouter::new(shards);
        let shards = (0..shards)
            .map(|_| {
                if quantized {
                    Hnsw::new_quantized(dim, config)
                } else {
                    Hnsw::new(dim, config)
                }
            })
            .collect::<Vec<_>>();
        let globals = vec![Vec::new(); router.shards()];
        ShardedHnsw { router, shards, globals, len: 0 }
    }

    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    pub fn router(&self) -> ShardRouter {
        self.router
    }

    pub fn is_quantized(&self) -> bool {
        self.shards[0].is_quantized()
    }

    /// Vector-storage bytes summed over shards.
    pub fn memory_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.memory_bytes()).sum()
    }

    /// Per-shard vector counts (the imbalance a hashed router produces).
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.len()).collect()
    }

    /// Pre-size every shard for a bulk load of `additional` vectors,
    /// assuming the router spreads them evenly (plus slack for the hashing
    /// imbalance it actually produces).
    pub fn reserve(&mut self, additional: usize) {
        let per_shard = additional.div_ceil(self.shards.len());
        let slack = per_shard / 4 + 1;
        for (shard, globals) in self.shards.iter_mut().zip(&mut self.globals) {
            shard.reserve(per_shard + slack);
            globals.reserve(per_shard + slack);
        }
    }

    /// Insert a vector under a caller-chosen global id (ids must be unique;
    /// the routing is a pure function of the id).
    pub fn insert(&mut self, global_id: usize, v: &[f32], rng: &mut impl Rng) {
        let s = self.router.shard_of(global_id as u64);
        let local = self.shards[s].insert(v, rng);
        debug_assert_eq!(local, self.globals[s].len());
        self.globals[s].push(global_id);
        self.len += 1;
    }
}

impl AnnIndex for ShardedHnsw {
    fn dim(&self) -> usize {
        self.shards[0].dim()
    }

    fn len(&self) -> usize {
        self.len
    }

    /// Scatter the query to every shard at full beam width, map local ids
    /// back to global, and gather the best `k` via [`merge_topk`].
    fn knn_ef(&self, query: &[f32], k: usize, ef: usize) -> Vec<(usize, f32)> {
        let mut candidates = Vec::new();
        for (shard, globals) in self.shards.iter().zip(&self.globals) {
            for (local, d) in shard.knn_ef(query, k, ef) {
                candidates.push((globals[local], d));
            }
        }
        merge_topk(candidates, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn grid_vectors(n: usize, dim: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| (0..dim).map(|d| ((i * (d + 3) * 31) % 97) as f32 / 97.0).collect())
            .collect()
    }

    #[test]
    fn router_is_stable_and_total() {
        let r = ShardRouter::new(4);
        let mut seen = vec![0usize; 4];
        for id in 0..1000u64 {
            let s = r.shard_of(id);
            assert_eq!(s, r.shard_of(id), "routing must be deterministic");
            assert!(s < 4);
            seen[s] += 1;
        }
        // A decent hash spreads 1000 ids roughly evenly over 4 shards.
        assert!(seen.iter().all(|&c| c > 150), "router too imbalanced: {seen:?}");
    }

    #[test]
    fn sharded_matches_brute_force_on_small_data() {
        let dim = 6;
        let pts = grid_vectors(300, dim);
        let mut rng = StdRng::seed_from_u64(3);
        let mut idx = ShardedHnsw::new(dim, HnswConfig { m: 12, ef_construction: 120, ef_search: 80 }, 3);
        for (i, p) in pts.iter().enumerate() {
            idx.insert(i, p, &mut rng);
        }
        assert_eq!(idx.len(), 300);
        assert_eq!(idx.shard_lens().iter().sum::<usize>(), 300);

        let q: Vec<f32> = (0..dim).map(|d| 0.1 * d as f32).collect();
        let got: Vec<usize> = idx.knn_ef(&q, 10, 80).into_iter().map(|(i, _)| i).collect();
        let mut want: Vec<usize> = (0..pts.len()).collect();
        want.sort_by(|&a, &b| {
            let da: f32 = q.iter().zip(&pts[a]).map(|(x, y)| (x - y) * (x - y)).sum();
            let db: f32 = q.iter().zip(&pts[b]).map(|(x, y)| (x - y) * (x - y)).sum();
            da.partial_cmp(&db).unwrap().then(a.cmp(&b))
        });
        let hits = got.iter().filter(|i| want[..10].contains(i)).count();
        assert!(hits >= 9, "sharded recall too low: {hits}/10");
    }

    #[test]
    fn merge_is_order_independent_and_tie_broken_by_id() {
        let a = vec![(3usize, 1.0f32), (1, 0.5), (7, 2.0)];
        let b = vec![(2usize, 0.5f32), (9, 1.5)];
        let mut ab = a.clone();
        ab.extend(&b);
        let mut ba = b.clone();
        ba.extend(&a);
        let m1 = merge_topk(ab, 3);
        let m2 = merge_topk(ba, 3);
        assert_eq!(m1, m2, "merge must not depend on shard arrival order");
        assert_eq!(m1, vec![(1, 0.5), (2, 0.5), (3, 1.0)], "ties break on id");
    }

    #[test]
    fn quantized_shards_report_quantized_storage() {
        let dim = 8;
        let mut rng = StdRng::seed_from_u64(5);
        let mut idx = ShardedHnsw::new_quantized(dim, HnswConfig::default(), 2);
        for (i, p) in grid_vectors(50, dim).iter().enumerate() {
            idx.insert(i, p, &mut rng);
        }
        assert!(idx.is_quantized());
        assert_eq!(idx.memory_bytes(), 50 * (dim + 2));
    }
}
