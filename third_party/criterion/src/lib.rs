//! Vendored, dependency-free stand-in for the subset of `criterion` this
//! workspace's benches use. No statistics engine: each benchmark runs
//! `sample_size` timed samples (after one warm-up call) and prints
//! mean/min/max wall time per iteration. Enough to compare kernels on the
//! machine at hand; not a replacement for real criterion output.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver (stands in for `criterion::Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = self.sample_size;
        eprintln!("\n== {name} ==");
        BenchmarkGroup { _criterion: self, name, sample_size }
    }

    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let sample_size = self.sample_size;
        run_benchmark(&id.into().label, sample_size, f);
    }
}

/// Named benchmark id (`BenchmarkId::new("dtw", 128)`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { label: s }
    }
}

/// Group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, f);
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
    }

    pub fn finish(self) {}
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    warmed_up: bool,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        if !self.warmed_up {
            black_box(routine());
            self.warmed_up = true;
        }
        let start = Instant::now();
        black_box(routine());
        self.samples.push(start.elapsed());
    }
}

fn run_benchmark(label: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher { samples: Vec::with_capacity(sample_size), warmed_up: false };
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    if bencher.samples.is_empty() {
        eprintln!("{label}: no samples recorded");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    let max = bencher.samples.iter().max().copied().unwrap_or_default();
    eprintln!(
        "{label}: mean {} (min {}, max {}, {} samples)",
        fmt_duration(mean),
        fmt_duration(min),
        fmt_duration(max),
        bencher.samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Collect benchmark functions under one name, with an optional shared config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut criterion: $crate::Criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Entry point: run every group passed in.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_all_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0usize;
        {
            let mut group = c.benchmark_group("stub");
            group.sample_size(4);
            group.bench_function("count", |b| b.iter(|| runs += 1));
            group.finish();
        }
        // 4 timed samples + 1 warm-up call.
        assert_eq!(runs, 5);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("stub");
        let input = 21u32;
        let mut seen = 0u32;
        group.bench_with_input(BenchmarkId::new("double", input), &input, |b, &x| {
            b.iter(|| seen = x * 2)
        });
        group.finish();
        assert_eq!(seen, 42);
    }

    #[test]
    fn id_formatting() {
        assert_eq!(BenchmarkId::new("dtw", 128).label, "dtw/128");
    }
}
