//! Vendored, dependency-free stand-in for the subset of `serde_json` this
//! workspace uses: `to_string`, `to_string_pretty`, `from_str`, and a
//! re-exported [`Value`]. Works against the serde stub's `Value` tree.

pub use serde::Value;

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Error raised by JSON encoding/decoding (alias of the serde stub error).
pub type Error = serde::Error;

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value)
}

// ---- rendering -------------------------------------------------------------

fn render(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    // Keep whole floats recognizable as numbers ("1.0").
                    let _ = write!(out, "{f:.1}");
                } else {
                    let _ = write!(out, "{f}");
                }
            } else {
                // JSON has no Inf/NaN; mirror serde_json's lossy behaviour.
                out.push_str("null");
            }
        }
        Value::Str(s) => render_string(s, out),
        Value::Seq(items) => render_block(out, indent, depth, '[', ']', items.len(), |out, i| {
            render(&items[i], out, indent, depth + 1);
        }),
        Value::Map(entries) => render_block(out, indent, depth, '{', '}', entries.len(), |out, i| {
            render_string(&entries[i].0, out);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            render(&entries[i].1, out, indent, depth + 1);
        }),
    }
}

fn render_block(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    n: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if n == 0 {
        out.push(close);
        return;
    }
    for i in 0..n {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i);
        if i + 1 < n {
            out.push(',');
        }
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parsing ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::custom("unexpected end of JSON"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::custom(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::Str(self.string()?)),
            b'[' => self.seq(),
            b'{' => self.map(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::custom(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]`, got `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            entries.push((key, val));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}`, got `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::custom("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::custom("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this stub's
                            // writer; map lone surrogates to the replacement
                            // character instead of failing.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Copy the full UTF-8 scalar starting here.
                    let s = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = s.chars().next().ok_or_else(|| Error::custom("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<f64>("3").unwrap(), 3.0);
    }

    #[test]
    fn vec_and_tuple_roundtrip() {
        let v = vec![[0.25f64, 1.0], [2.0, 3.5]];
        let s = to_string(&v).unwrap();
        let back: Vec<[f64; 2]> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line1\nline\"2\"\t\\end".to_string();
        let enc = to_string(&s).unwrap();
        let back: String = from_str(&enc).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn unicode_roundtrip() {
        let s = "héllo ☃".to_string();
        let back: String = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn pretty_output_has_indentation() {
        let v = vec![1u32, 2];
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "[\n  1,\n  2\n]");
    }

    #[test]
    fn parse_whitespace_and_nested() {
        let v: Vec<Vec<f64>> = from_str(" [ [1.0, 2.0] , [] ] ").unwrap();
        assert_eq!(v, vec![vec![1.0, 2.0], vec![]]);
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(from_str::<u32>("42 x").is_err());
        assert!(from_str::<Vec<u32>>("[1,]").is_err());
    }

    #[test]
    fn nonfinite_floats_render_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }
}
