//! Vendored minimal `Serialize`/`Deserialize` derive macros for the serde
//! stub. Implemented directly on `proc_macro` token streams (no syn/quote —
//! the build container has no crates.io access).
//!
//! Supported item shapes — exactly what this workspace derives on:
//! - structs with named fields (no generics)
//! - enums whose variants are all unit variants (no generics)
//!
//! Anything else produces a `compile_error!` pointing here.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Item {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<String> },
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let code = match (item, mode) {
        (Item::Struct { name, fields }, Mode::Serialize) => struct_serialize(&name, &fields),
        (Item::Struct { name, fields }, Mode::Deserialize) => struct_deserialize(&name, &fields),
        (Item::Enum { name, variants }, Mode::Serialize) => enum_serialize(&name, &variants),
        (Item::Enum { name, variants }, Mode::Deserialize) => enum_deserialize(&name, &variants),
    };
    code.parse().expect("serde_derive stub generated invalid Rust")
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", format!("serde stub derive: {msg}"))
        .parse()
        .expect("compile_error tokens")
}

/// Parse the derive input into a struct/enum skeleton (names only — the
/// generated impls never need field types).
fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("`{name}`: generic items are not supported"));
    }

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => return Err(format!("`{name}`: only brace-bodied items are supported (no tuple/unit structs)")),
    };

    if kind == "struct" {
        Ok(Item::Struct { name, fields: parse_named_fields(body)? })
    } else {
        Ok(Item::Enum { name, variants: parse_unit_variants(body)? })
    }
}

/// Advance past `#[...]` attributes (incl. doc comments) and `pub`/`pub(..)`.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field `{name}`, found {other:?}")),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    Ok(fields)
}

fn parse_unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Group(_)) => {
                return Err(format!("variant `{name}` has fields; only unit variants are supported"))
            }
            other => return Err(format!("unexpected token after variant `{name}`: {other:?}")),
        }
        variants.push(name);
    }
    Ok(variants)
}

// ---- code generation -------------------------------------------------------

fn struct_serialize(name: &str, fields: &[String]) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}))"))
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Map(vec![{entries}])\n\
             }}\n\
         }}",
        entries = entries.join(", ")
    )
}

fn struct_deserialize(name: &str, fields: &[String]) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: match __v.get_field({f:?}) {{\n\
                     Some(x) => ::serde::Deserialize::from_value(x)?,\n\
                     None => return Err(::serde::Error::missing_field({f:?})),\n\
                 }}"
            )
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 match __v {{\n\
                     ::serde::Value::Map(_) => Ok({name} {{ {inits} }}),\n\
                     other => Err(::serde::Error::expected(\"map\", other)),\n\
                 }}\n\
             }}\n\
         }}",
        inits = inits.join(", ")
    )
}

fn enum_serialize(name: &str, variants: &[String]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|v| format!("{name}::{v} => ::serde::Value::Str({v:?}.to_string())"))
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{ {arms} }}\n\
             }}\n\
         }}",
        arms = arms.join(", ")
    )
}

fn enum_deserialize(name: &str, variants: &[String]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|v| format!("{v:?} => Ok({name}::{v})"))
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 match __v {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {arms},\n\
                         other => Err(::serde::Error::custom(\n\
                             format!(\"unknown {name} variant `{{other}}`\"))),\n\
                     }},\n\
                     other => Err(::serde::Error::expected(\"string (variant name)\", other)),\n\
                 }}\n\
             }}\n\
         }}",
        arms = arms.join(",\n")
    )
}
