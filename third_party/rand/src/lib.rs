//! Vendored, dependency-free stand-in for the subset of the `rand` crate API
//! this workspace uses. The build container has no crates.io access, so the
//! workspace `rand` dependency points here (see `[workspace.dependencies]`).
//!
//! Covered surface: `RngCore`, `SeedableRng`, `Rng::{gen, gen_range,
//! gen_bool}`, `rngs::StdRng`, and `seq::SliceRandom::{shuffle, choose}`.
//!
//! `StdRng` is a xoshiro256** generator (Blackman & Vigna) seeded through
//! SplitMix64 — a different stream than upstream rand's ChaCha12, but the
//! workspace only relies on *reproducibility given a seed*, never on
//! specific values.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface (mirrors `rand::RngCore`).
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Seedable construction (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed via SplitMix64 (upstream does the
    /// same trick).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Values producible by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
                   u64 => next_u64, usize => next_u64,
                   i8 => next_u32, i16 => next_u32, i32 => next_u32, i64 => next_u64);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(bounded_u64(rng, span) as i64) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add(bounded_u64(rng, span + 1) as i64) as $t
            }
        }
    )*};
}

impl_range_int!(i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit: $t = Standard::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit: $t = Standard::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_range_float!(f32, f64);

/// Unbiased `[0, bound)` via Lemire-style rejection.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let (hi, lo) = {
            let wide = (x as u128) * (bound as u128);
            ((wide >> 64) as u64, wide as u64)
        };
        if lo >= threshold {
            return hi;
        }
    }
}

/// User-facing generator methods (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        let unit: f64 = Standard::sample(self);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Workspace extension (not in upstream `rand`): expose the raw
        /// xoshiro256** state so checkpoint/resume can persist the generator
        /// position and continue the exact same stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Workspace extension (not in upstream `rand`): rebuild a generator
        /// from a state captured with [`StdRng::state`]. An all-zero state
        /// (a xoshiro fixed point, unreachable from any seeded stream) is
        /// nudged the same way `from_seed` does.
        pub fn from_state(mut s: [u64; 4]) -> StdRng {
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }

        fn step(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.step()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.step().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers (mirrors `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let u = rng.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let f = rng.gen_range(-2.5f32..2.5);
            assert!((-2.5..2.5).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
            let x = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn unit_floats_cover_zero_one() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn state_roundtrip_continues_stream() {
        let mut a = StdRng::seed_from_u64(17);
        for _ in 0..5 {
            let _: u64 = a.gen();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn all_zero_state_is_nudged() {
        let mut rng = StdRng::from_state([0; 4]);
        assert_ne!(rng.gen::<u64>() | rng.gen::<u64>(), 0);
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted (astronomically unlikely)");
    }
}
