//! Vendored, dependency-free (except the vendored `rand`) stand-in for the
//! subset of `proptest` this workspace uses: `Strategy` + `prop_map`,
//! range/tuple/`Just`/`Union` strategies, `prop::collection::vec`, and the
//! `proptest!`/`prop_assert!`/`prop_assert_eq!`/`prop_oneof!` macros.
//!
//! No shrinking: a failing case panics with the case index and the RNG seed
//! so it can be replayed. Case generation is deterministic per test name.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Runner configuration (stands in for `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 32 }
    }
}

/// A generator of random values (stands in for `proptest::strategy::Strategy`).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed strategies (backs `prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

/// Helper used by `prop_oneof!` to erase strategy types.
pub fn boxed_strategy<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f32, f64, usize, u8, u16, u32, u64, i8, i16, i32, i64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

/// Length bound for [`collection::vec`]; built from `usize`, `a..b`, `a..=b`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.end > r.start, "empty size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

pub mod collection {
    use super::*;

    /// `Vec` strategy with element strategy + size bound.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..=self.size.hi)
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Deterministic per-test seed (FNV-1a over the test name).
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::{Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed_strategy($strategy)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}` ({} != {})",
            l,
            r,
            stringify!($left),
            stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg($config:expr)) => {};
    (@cfg($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let seed = $crate::seed_for(stringify!($name));
            let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(msg) = outcome {
                    panic!(
                        "proptest `{}` case {}/{} failed (seed {:#x}): {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        seed,
                        msg
                    );
                }
            }
        }
        $crate::__proptest_fns! { @cfg($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Tag {
        X,
        Y,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_stay_in_bounds(
            x in -1.5f32..1.5,
            n in 1usize..12,
            pair in (0.0f64..1.0, 0.0f64..1.0),
        ) {
            prop_assert!((-1.5..1.5).contains(&x));
            prop_assert!((1..12).contains(&n));
            prop_assert!(pair.0 >= 0.0 && pair.0 < 1.0);
            prop_assert!(pair.1 >= 0.0 && pair.1 < 1.0);
        }

        #[test]
        fn vec_sizes_and_map(
            v in prop::collection::vec(0.0f64..1.0, 3..7),
            fixed in prop::collection::vec(0u32..5, 4),
            tag in prop_oneof![Just(Tag::X), Just(Tag::Y)],
            doubled in (1usize..5).prop_map(|k| k * 2),
        ) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert_eq!(fixed.len(), 4);
            prop_assert!(tag == Tag::X || tag == Tag::Y);
            prop_assert!(doubled % 2 == 0);
            prop_assert!((2..=8).contains(&doubled));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use rand::SeedableRng;
        let strat = crate::collection::vec(0.0f64..1.0, 5usize);
        let a = {
            let mut rng = rand::rngs::StdRng::seed_from_u64(9);
            crate::Strategy::generate(&strat, &mut rng)
        };
        let b = {
            let mut rng = rand::rngs::StdRng::seed_from_u64(9);
            crate::Strategy::generate(&strat, &mut rng)
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failures_propagate() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            #[allow(unused)]
            fn inner(x in 0u32..10) {
                prop_assert!(false, "boom");
            }
        }
        inner();
    }
}
