//! Vendored, dependency-free stand-in for the subset of the `bytes` crate
//! this workspace uses (checkpoint framing in `tmn-core`): `Bytes`,
//! `BytesMut`, and the little-endian `Buf`/`BufMut` accessors.
//!
//! `Bytes` is a plain boxed slice here — no reference-counted slicing — which
//! is all the checkpoint reader/writer needs.

use std::ops::Deref;

/// Immutable byte buffer (stands in for `bytes::Bytes`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bytes {
    data: Box<[u8]>,
}

impl Bytes {
    pub fn new() -> Bytes {
        Bytes::default()
    }

    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: data.into() }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: v.into_boxed_slice() }
    }
}

/// Growable byte buffer (stands in for `bytes::BytesMut`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data.into_boxed_slice() }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Drop all contents, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        self.data.clear();
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read-side cursor over a byte source (stands in for `bytes::Buf`).
///
/// Implemented for `&[u8]`: every getter consumes from the front of the
/// slice, exactly like upstream.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "Buf: not enough bytes");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(self.remaining() >= len, "Buf: not enough bytes");
        let out = Bytes::copy_from_slice(&self.chunk()[..len]);
        self.advance(len);
        out
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "Buf: advance past end");
        *self = &self[cnt..];
    }
}

/// Write-side sink (stands in for `bytes::BufMut`).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut buf = BytesMut::new();
        buf.put_slice(b"TMNW");
        buf.put_u32_le(7);
        buf.put_f32_le(-1.25);
        let frozen = buf.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.remaining(), 12);
        let mut magic = [0u8; 4];
        r.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"TMNW");
        assert_eq!(r.get_u32_le(), 7);
        assert_eq!(r.get_f32_le(), -1.25);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn copy_to_bytes_consumes() {
        let data = vec![1u8, 2, 3, 4, 5];
        let mut r: &[u8] = &data;
        let head = r.copy_to_bytes(2);
        assert_eq!(head.to_vec(), vec![1, 2]);
        assert_eq!(r.remaining(), 3);
    }

    #[test]
    #[should_panic(expected = "not enough bytes")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32_le();
    }
}
