//! Vendored, dependency-free stand-in for the subset of `serde` this
//! workspace uses. The build container has no crates.io access, so the
//! workspace `serde` dependency points here.
//!
//! Instead of upstream's visitor-based data model, this stub routes all
//! (de)serialization through a small JSON-shaped [`Value`] tree. The derive
//! macros (re-exported from the sibling `serde_derive` stub) support structs
//! with named fields and enums with unit variants — exactly the shapes the
//! workspace derives on.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::HashMap;
use std::fmt;

/// JSON-shaped intermediate representation.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Integers keep full precision separately from floats so `u64` seeds
    /// and `usize` counts round-trip exactly.
    Int(i128),
    Float(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Insertion-ordered map (JSON object).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in a `Map` value.
    pub fn get_field(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Error raised during (de)serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    pub fn custom(msg: impl fmt::Display) -> Error {
        Error(msg.to_string())
    }

    pub fn missing_field(name: &str) -> Error {
        Error(format!("missing field `{name}`"))
    }

    pub fn expected(what: &str, got: &Value) -> Error {
        Error(format!("expected {what}, got {got:?}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Value`] tree (stands in for `serde::Serialize`).
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] tree (stands in for `serde::Deserialize`).
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// ---- primitive impls -------------------------------------------------------

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::custom(format!("integer {i} out of range"))),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(Error::expected("integer", other)),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    other => Err(Error::expected("number", other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

// ---- container impls -------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(Deserialize::from_value).collect(),
            other => Err(Error::expected("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Deserialize::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {n}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Seq(items) => {
                        let expected = [$($idx),+].len();
                        if items.len() != expected {
                            return Err(Error::custom(format!(
                                "expected tuple of length {expected}, got {}", items.len())));
                        }
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::expected("sequence (tuple)", other)),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0)); // stable output
        Value::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::expected("map", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let arr = [0.5f64, 1.5];
        assert_eq!(<[f64; 2]>::from_value(&arr.to_value()).unwrap(), arr);
        let opt: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&opt.to_value()).unwrap(), None);
        let pair = (3usize, "x".to_string());
        assert_eq!(<(usize, String)>::from_value(&pair.to_value()).unwrap(), pair);
    }

    #[test]
    fn int_range_checked() {
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
    }

    #[test]
    fn wrong_shape_rejected() {
        assert!(bool::from_value(&Value::Int(1)).is_err());
        assert!(Vec::<u32>::from_value(&Value::Str("no".into())).is_err());
    }
}
